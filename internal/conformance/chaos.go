package conformance

// The chaos dimension of the conformance suite: the paper's theorems
// promise that blocks never communicate, which makes each block an
// atomic recovery unit. CheckChaos turns that promise into a checked
// property — under a seeded schedule of injected crashes, slow nodes,
// and lossy distribution links, a parallel run must still end
// bit-identical to the fault-free sequential state, within a bounded
// number of block retries, without a single inter-node message.

import (
	"fmt"

	"commfree/internal/chaos"
	"commfree/internal/exec"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
)

// CheckChaos runs one nest under the seed's failure schedule on every
// parallel engine (oracle, plus compiled and kernel when the nest is
// within the dense engine's caps) and verifies chaos-recovery:
//
//   - final state equals the fault-free sequential reference exactly;
//   - block retries stay within blocks × MaxFailuresPerBlock;
//   - zero inter-node messages — recovery is communication-free too.
//
// Nests beyond maxExecIterations are skipped (nil), like the execution
// properties of Check.
func CheckChaos(nest *loop.Nest, strat partition.Strategy, seed int64) error {
	if err := nest.Validate(); err != nil {
		return fmt.Errorf("conformance: input nest invalid: %w", err)
	}
	if nest.NumIterations() > maxExecIterations {
		return nil
	}
	res, err := computeFor(nest, strat)
	if err != nil {
		return fmt.Errorf("conformance: %s: partition failed: %w", strat, err)
	}
	const procs = 4
	cost := machine.Transputer()
	want := exec.Sequential(nest, nil)

	check := func(engine string, run func(inj *chaos.Injector) (*exec.Report, error)) error {
		inj := chaos.Default(seed)
		rep, err := run(inj)
		if err != nil {
			return fmt.Errorf("conformance: %s/%s: chaos run failed under seed %d: %w", strat, engine, seed, err)
		}
		if n := rep.Machine.InterNodeMessages(); n != 0 {
			return fmt.Errorf("conformance: %s/%s: %d inter-node messages during chaos recovery (seed %d)", strat, engine, n, seed)
		}
		if err := exec.Equal(rep.Final, want); err != nil {
			return fmt.Errorf("conformance: %s/%s: chaos state diverges from fault-free run (seed %d): %w", strat, engine, seed, err)
		}
		if bound := int64(len(res.Iter.Blocks) * inj.MaxFailuresPerBlock()); rep.Chaos.Retries > bound {
			return fmt.Errorf("conformance: %s/%s: %d retries exceed bound %d (seed %d)", strat, engine, rep.Chaos.Retries, bound, seed)
		}
		return nil
	}

	if err := check("oracle", func(inj *chaos.Injector) (*exec.Report, error) {
		return exec.ParallelOpts(res, procs, cost, exec.Options{Chaos: inj})
	}); err != nil {
		return err
	}
	if prog, cerr := exec.CompileNest(nest, res.Redundant); cerr == nil {
		if err := check("compiled", func(inj *chaos.Injector) (*exec.Report, error) {
			return prog.ParallelOpts(res, procs, cost, exec.Options{Chaos: inj})
		}); err != nil {
			return err
		}
		kern, serr := prog.Specialize(res, procs)
		if serr != nil {
			return fmt.Errorf("conformance: %s: kernel specialization failed: %w", strat, serr)
		}
		return check("kernel", func(inj *chaos.Injector) (*exec.Report, error) {
			return kern.Run(cost, exec.Options{Chaos: inj})
		})
	}
	return nil
}
