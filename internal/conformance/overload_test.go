package conformance

import "testing"

// TestOverload: the backpressure partition under both admission modes —
// a saturating burst over single-worker nodes (one draining) terminates
// every request as exactly one of {200 bit-identical, 429+Retry-After,
// 503+Retry-After}, with all three classes observed.
func TestOverload(t *testing.T) {
	for _, mode := range []string{"slo", "queue"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			t.Parallel()
			if err := CheckOverload(3, 48, mode); err != nil {
				t.Fatal(err)
			}
		})
	}
}
