package conformance

import (
	"testing"

	"commfree/internal/lang"
)

// FuzzConformance feeds arbitrary DSL source through the parser and,
// when it yields a valid nest of tractable size, demands every theorem
// conformance property of it — all five strategies partition and
// Verify on every input, and the parallel-execution engines run under
// a strategy derived from the input (so the fuzzer exercises every
// scheduler, MARS included). Seeds are the language corpus (the
// paper's loops plus the parser's deliberate-rejection cases, which
// exercise the skip path).
func FuzzConformance(f *testing.F) {
	for _, src := range lang.Corpus() {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		nest, err := lang.Parse(src)
		if err != nil {
			t.Skip("not a valid program")
		}
		if nest.NumIterations() > 1<<10 {
			t.Skip("iteration space too large for a fuzz step")
		}
		strat := strategies[len(src)%len(strategies)]
		if err := Check(nest, strat); err != nil {
			t.Fatalf("conformance violation on fuzzed program (%s): %v\nsource:\n%s", strat, err, src)
		}
	})
}
