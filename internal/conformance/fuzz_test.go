package conformance

import (
	"testing"

	"commfree/internal/lang"
)

// FuzzConformance feeds arbitrary DSL source through the parser and,
// when it yields a valid nest of tractable size, demands every theorem
// conformance property of it. Seeds are the language corpus (the
// paper's loops plus the parser's deliberate-rejection cases, which
// exercise the skip path).
func FuzzConformance(f *testing.F) {
	for _, src := range lang.Corpus() {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		nest, err := lang.Parse(src)
		if err != nil {
			t.Skip("not a valid program")
		}
		if nest.NumIterations() > 1<<10 {
			t.Skip("iteration space too large for a fuzz step")
		}
		if err := CheckNest(nest); err != nil {
			t.Fatalf("conformance violation on fuzzed program: %v\nsource:\n%s", err, src)
		}
	})
}
