package conformance

// The MARS dimension of the conformance suite: the acceptance sweep
// for the usage-based fifth strategy. Check already proves, per nest,
// that the MARS partition Verifies communication-free, never has fewer
// blocks than any theorem strategy, and has zero redundant-copy volume
// (hence ≤ Selective's for every duplication subset). The tests here
// drive that through 500 usage-biased seeded nests with Mars as the
// execution strategy — all three engines, bit-identical to the oracle
// — plus seeded chaos schedules and the corpus strict-improvement
// witness.

import (
	"math/rand"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/loopgen"
	"commfree/internal/mars"
	"commfree/internal/partition"
)

// TestMarsConformanceSeededNests is the 500-nest MARS sweep: nests are
// drawn from the usage-biased generator (overwritten producers,
// partial-overlap consumer sets) so the MARS-specific properties are
// non-vacuous, and the parallel-execution property runs under Mars.
func TestMarsConformanceSeededNests(t *testing.T) {
	if testing.Short() {
		t.Skip("MARS conformance sweep skipped in -short")
	}
	rnd := rand.New(rand.NewSource(20260807))
	cfg := loopgen.DefaultConfig()
	for i := 0; i < 500; i++ {
		nest := loopgen.GenerateUsage(rnd, cfg)
		if err := Check(nest, partition.Mars); err != nil {
			reportShrunk(t, nest, err, func(n *loop.Nest) bool { return Check(n, partition.Mars) != nil })
			return
		}
	}
}

// TestMarsChaosConformance replays seeded fault schedules with the
// MARS partition on every engine: recovery must stay exactly-once
// (bit-identical final state, bounded retries, zero messages).
func TestMarsChaosConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("MARS chaos sweep skipped in -short")
	}
	rnd := rand.New(rand.NewSource(99))
	cfg := loopgen.DefaultConfig()
	for i := 0; i < 50; i++ {
		nest := loopgen.GenerateUsage(rnd, cfg)
		seed := int64(i * 7)
		if err := CheckChaos(nest, partition.Mars, seed); err != nil {
			reportShrunk(t, nest, err, func(n *loop.Nest) bool {
				return CheckChaos(n, partition.Mars, seed) != nil
			})
			return
		}
	}
}

// TestMarsStrictImprovementOnCorpus pins the acceptance criterion that
// MARS's redundant-copy volume strictly beats Selective's on at least
// one corpus seed (and never loses on any). The volume is compared
// against the cheapest Selective duplication subset, so the witness
// cannot be an artifact of one unlucky subset choice.
func TestMarsStrictImprovementOnCorpus(t *testing.T) {
	strict := 0
	for _, src := range lang.Corpus() {
		nest, err := lang.Parse(src)
		if err != nil {
			continue
		}
		res, err := mars.Compute(nest)
		if err != nil {
			t.Fatalf("mars.Compute(%q): %v", src, err)
		}
		mv := res.RedundantCopyVolume(res.Redundant)
		arrays := nest.Arrays()
		if len(arrays) > 4 {
			continue
		}
		minSel := -1
		for mask := 0; mask < 1<<len(arrays); mask++ {
			dup := map[string]bool{}
			for i, a := range arrays {
				if mask&(1<<i) != 0 {
					dup[a] = true
				}
			}
			sel, err := partition.ComputeSelective(nest, dup)
			if err != nil {
				t.Fatalf("selective %v on %q: %v", dup, src, err)
			}
			sv := sel.RedundantCopyVolume(res.Redundant)
			if mv > sv {
				t.Errorf("nest %q: MARS volume %d exceeds selective %v volume %d", src, mv, dup, sv)
			}
			if minSel < 0 || sv < minSel {
				minSel = sv
			}
		}
		if minSel > mv {
			strict++
		}
	}
	if strict == 0 {
		t.Fatal("no corpus seed shows strict MARS improvement over every Selective subset — acceptance witness missing")
	}
}
