package conformance

// Cluster dimension of the conformance suite: an n-node in-process
// fleet must be observationally identical to a single service. For the
// corpus × all four strategies, POST /v1/execute through a (rotating)
// cluster entry node must return a bit-identical execution document —
// same simulated timings, message counts, per-node workloads, and
// validation verdict — as the single-node reference, because routing
// and forwarding may move *where* a plan compiles but never *what* it
// computes. Under a seeded single-node-crash schedule the same must
// hold with zero lost requests: forwards to the crashed node fail fast,
// feed the failure detector, and fall through to a replica.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"commfree/internal/chaos"
	"commfree/internal/cluster"
	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/service"
)

// strategyNames are the wire names of the strategies the cluster
// dimensions sweep: the four theorem strategies plus MARS.
var strategyNames = []string{
	"non-duplicate", "duplicate", "minimal-non-duplicate", "minimal-duplicate", "mars",
}

// clusterProcs is the simulated machine size used by the cluster
// dimension (matches the chaos dimension).
const clusterProcs = 4

// execDoc is the deterministic projection of an ExecuteResponse: every
// field that is a pure function of (program, strategy, processors,
// engine). Wall-clock time, cache state, and trace IDs legitimately
// differ between nodes and are excluded; everything here must be
// bit-identical across the fleet.
type execDoc struct {
	Strategy          string
	Processors        int
	DistributionS     float64
	ComputeS          float64
	SimElapsedS       float64
	HostMessages      int64
	InterNodeMessages int64
	Iterations        string
	Engine            string
	Validated         bool
	Mismatches        int
	Elements          int
}

func docOf(r *service.ExecuteResponse) execDoc {
	return execDoc{
		Strategy:          r.Strategy,
		Processors:        r.Processors,
		DistributionS:     r.DistributionS,
		ComputeS:          r.ComputeS,
		SimElapsedS:       r.SimElapsedS,
		HostMessages:      r.HostMessages,
		InterNodeMessages: r.InterNodeMessages,
		Iterations:        fmt.Sprint(r.IterationsPerNode),
		Engine:            r.Engine,
		Validated:         r.Validated,
		Mismatches:        r.Mismatches,
		Elements:          r.Elements,
	}
}

// clusterCorpus filters lang.Corpus down to valid nests small enough
// for the execution properties.
func clusterCorpus() []string {
	var out []string
	for _, src := range lang.Corpus() {
		nest, err := lang.Parse(src)
		if err != nil || nest.Validate() != nil {
			continue
		}
		if nest.NumIterations() > maxExecIterations {
			continue
		}
		out = append(out, src)
	}
	return out
}

// CheckCluster runs the cluster dimension: an n-node in-process fleet
// against a single-node reference, corpus × four strategies on the
// given engine. seed != 0 additionally replays a seeded membership
// fault schedule (a crashed node, dropped heartbeats) during the sweep;
// every request must still succeed with a bit-identical document.
func CheckCluster(nodes int, engine string, seed int64) error {
	base := service.Config{
		Workers:    4,
		QueueDepth: 64,
		Engine:     engine,
	}
	ref := service.New(base)
	defer ref.Close()

	fleet, err := cluster.NewLocal(nodes, base,
		cluster.WithReplicas(2),
		cluster.WithSeed(seed))
	if err != nil {
		return fmt.Errorf("conformance: cluster: %w", err)
	}
	defer fleet.Close()

	// The crash schedule the detectors consult also gates the transport:
	// requests to a peer inside its crash window fail like a refused
	// connection, keyed to the same shared heartbeat round the detectors
	// tick through — belief and reality replay from one seed.
	var round atomic.Int64
	var sched *chaos.Schedule
	if seed != 0 {
		sched = chaos.NewSchedule(seed, chaos.ClusterConfig())
		fleet.Transport.SetFail(func(host string) error {
			idx, err := strconv.Atoi(host[1:]) // hosts are n0..n{k}
			if err != nil {
				return nil
			}
			if sched.PeerCrashed(0, nodes, idx, int(round.Load())) {
				return fmt.Errorf("conformance: peer %s crashed (round %d)", host, round.Load())
			}
			return nil
		})
	}
	tick := func() {
		round.Add(1)
		fleet.Tick()
	}

	client := fleet.Client()
	corpus := clusterCorpus()
	if len(corpus) == 0 {
		return fmt.Errorf("conformance: cluster corpus is empty")
	}

	entry := 0
	nextEntry := func() int {
		// Rotate over nodes a live client could actually reach (a real
		// client cannot connect to a crashed node).
		for i := 0; i < nodes; i++ {
			entry = (entry + 1) % nodes
			if sched == nil || !sched.PeerCrashed(0, nodes, entry, int(round.Load())) {
				return entry
			}
		}
		return entry
	}

	// check compares one fleet request against the single-node reference.
	check := func(ci int, src, strat string) error {
		req := service.ExecuteRequest{CompileRequest: service.CompileRequest{
			Source: src, Strategy: strat, Processors: clusterProcs,
		}}
		want, err := ref.Execute(context.Background(), req)
		if err != nil {
			return fmt.Errorf("conformance: cluster: reference execute failed (corpus[%d], %s): %w", ci, strat, err)
		}
		got, servedBy, err := clusterExecute(client, fleet.URL(nextEntry()), req)
		if err != nil {
			return fmt.Errorf("conformance: cluster: lost request (corpus[%d], %s, round %d): %w", ci, strat, round.Load(), err)
		}
		if d1, d2 := docOf(want), docOf(got); d1 != d2 {
			return fmt.Errorf("conformance: cluster: corpus[%d] %s: fleet (via %s) diverges from single node:\n single: %+v\n fleet:  %+v",
				ci, strat, servedBy, d1, d2)
		}
		if got.InterNodeMessages != 0 {
			return fmt.Errorf("conformance: cluster: corpus[%d] %s: %d inter-node messages", ci, strat, got.InterNodeMessages)
		}
		if !got.Validated {
			return fmt.Errorf("conformance: cluster: corpus[%d] %s: fleet result failed validation (%d mismatches)", ci, strat, got.Mismatches)
		}
		return nil
	}

	if seed != 0 {
		// Crash replay: march the heartbeat rounds through the victim's
		// whole crash window (plus the detection/recovery tail), each
		// round re-requesting the corpus nests whose plans are homed on
		// the victim — those requests MUST hit the crash, fail over to a
		// replica, and still return the reference document.
		victim := sched.PeerCrashVictim(0, nodes)
		start, wlen := sched.PeerCrashWindow(0, victim)
		fullRing := cluster.NewRing(fleet.Names, 0)
		var probes []int
		for ci, src := range corpus {
			nest, _ := lang.Parse(src)
			owner, _ := fullRing.Owner(cluster.KeyHash(lang.Canonical(nest)))
			if owner == fleet.Names[victim] {
				probes = append(probes, ci)
			}
		}
		if len(probes) == 0 {
			return fmt.Errorf("conformance: cluster: seed %d elects victim %s but no corpus key is homed there — pick another seed", seed, fleet.Names[victim])
		}
		for r := 0; r < start+wlen+5; r++ {
			tick()
			for _, ci := range probes {
				if err := check(ci, corpus[ci], strategyNames[r%len(strategyNames)]); err != nil {
					return err
				}
			}
		}
		var fwdErrs int64
		for _, svc := range fleet.Services {
			fwdErrs += svc.Metrics().Counter("cluster_forward_errors")
		}
		if fwdErrs == 0 {
			return fmt.Errorf("conformance: cluster: crash schedule (seed %d, victim %s, window [%d,%d)) was vacuous — no forward ever failed over", seed, fleet.Names[victim], start, start+wlen)
		}
	}

	for ci, src := range corpus {
		nest, _ := lang.Parse(src)
		key := cluster.KeyHash(lang.Canonical(nest))
		if seed == 0 {
			// Routing purity: with stable membership every node derives
			// the same home for the key from (peer set, hash) alone.
			if err := checkPlacementAgreement(fleet, key); err != nil {
				return err
			}
		}
		for _, strat := range strategyNames {
			tick()
			if err := check(ci, src, strat); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkPlacementAgreement asserts every node's ring maps the key to
// the same home — routing is a pure function of (peer set, hash).
func checkPlacementAgreement(fleet *cluster.Local, key uint64) error {
	var home string
	for i, n := range fleet.Nodes {
		owner, ok := n.Ring().Owner(key)
		if !ok {
			return fmt.Errorf("conformance: cluster: node %s has an empty ring", fleet.Names[i])
		}
		if i == 0 {
			home = owner
		} else if owner != home {
			return fmt.Errorf("conformance: cluster: placement disagreement for key %#x: %s says %s, %s says %s",
				key, fleet.Names[0], home, fleet.Names[i], owner)
		}
	}
	return nil
}

// CheckClusterBatch runs the coalescing dimension: with request
// batching enabled on every node, `requests` concurrent identical
// execute requests sprayed across rotating entry nodes must all route
// to the plan's home node and coalesce there — exactly one compile in
// the whole fleet, batches plus followers accounting for every
// request, at least one request riding as a follower, and all
// responses carrying the same validated execution document.
func CheckClusterBatch(nodes, requests int) error {
	base := service.Config{
		Workers:     4,
		QueueDepth:  64,
		BatchWindow: 250 * time.Millisecond,
		BatchMax:    2 * requests,
	}
	// One replica per plan: load-aware routing would otherwise be free
	// to spread concurrent requests over the replica set, which is
	// correct but defeats the single-compile assertion this check makes.
	fleet, err := cluster.NewLocal(nodes, base, cluster.WithReplicas(1))
	if err != nil {
		return fmt.Errorf("conformance: cluster: %w", err)
	}
	defer fleet.Close()
	client := fleet.Client()

	req := service.ExecuteRequest{CompileRequest: service.CompileRequest{
		Source: lang.Format(loop.L5(4)), Strategy: "duplicate", Processors: clusterProcs,
	}}
	resps := make([]*service.ExecuteResponse, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], _, errs[i] = clusterExecute(client, fleet.URL(i%nodes), req)
		}(i)
	}
	wg.Wait()

	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			return fmt.Errorf("conformance: cluster: batched request %d lost: %w", i, errs[i])
		}
		if !resps[i].Validated {
			return fmt.Errorf("conformance: cluster: batched request %d failed validation (%d mismatches)", i, resps[i].Mismatches)
		}
		if d1, d2 := docOf(resps[0]), docOf(resps[i]); d1 != d2 {
			return fmt.Errorf("conformance: cluster: batched request %d diverges:\n first: %+v\n this:  %+v", i, d1, d2)
		}
	}
	var compiles, batches, followers int64
	for _, svc := range fleet.Services {
		compiles += svc.Metrics().Counter("compiles")
		batches += svc.Metrics().Counter("execute_batches")
		followers += svc.Metrics().Counter("execute_batch_followers")
	}
	if compiles != 1 {
		return fmt.Errorf("conformance: cluster: %d compiles across the fleet for %d identical requests, want exactly 1", compiles, requests)
	}
	if batches < 1 || batches+followers != int64(requests) {
		return fmt.Errorf("conformance: cluster: batches (%d) + followers (%d) do not account for %d requests", batches, followers, requests)
	}
	if followers == 0 {
		return fmt.Errorf("conformance: cluster: no request ever coalesced (batches %d, requests %d)", batches, requests)
	}
	return nil
}

// clusterExecute POSTs the request to the entry node and decodes the
// response, reporting which node served it.
func clusterExecute(client *http.Client, baseURL string, req service.ExecuteRequest) (*service.ExecuteResponse, string, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, "", err
	}
	res, err := client.Post(baseURL+"/v1/execute", "application/json", bytes.NewReader(payload))
	if err != nil {
		return nil, "", err
	}
	defer res.Body.Close()
	servedBy := res.Header.Get("X-Commfree-Served-By")
	if servedBy == "" {
		servedBy = "entry"
	}
	if res.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(res.Body).Decode(&e)
		return nil, servedBy, fmt.Errorf("status %d: %s", res.StatusCode, e.Error)
	}
	var out service.ExecuteResponse
	if err := json.NewDecoder(res.Body).Decode(&out); err != nil {
		return nil, servedBy, err
	}
	return &out, servedBy, nil
}
