package conformance

import (
	"math/rand"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loopgen"
)

// nNormalizeCases is the generated-case count of the normalization
// conformance sweep: each case runs 4 strategies × oracle/compiled/
// kernel engines on both the normalized nest and its hand-uniformized
// twin — the "≥500 affine nests" gate.
const nNormalizeCases = 500

// reportShrunkAffine minimizes a failing affine case against the
// violated property and reports the minimal affine .cf repro. The twin
// is recomputed per candidate so the shrunk program is still paired
// with its own hand-uniformized form.
func reportShrunkAffine(t *testing.T, c *loopgen.AffineCase, firstErr error, chaosSeed int64) {
	t.Helper()
	fails := func(a *lang.AffineNest) bool {
		return CheckNormalize(a, loopgen.Uniformize(a.Nest), c.SymVals, chaosSeed) != nil
	}
	small := loopgen.ShrinkAffine(c.Affine, fails)
	t.Errorf("normalization conformance violation: %v\nminimal affine repro (.cf):\n%s\nsymbolic constants: %v",
		firstErr, lang.FormatAffineNest(small), c.SymVals)
}

// TestNormalizeConformance is the normalization gate: every generated
// affine nest, once normalized, must be canonically identical to its
// hand-uniformized twin, semantically identical to the raw nest under
// bound symbolic constants, and bit-identical to the twin in final
// state and machine accounting across 4 strategies × 3 engines —
// periodically under seeded chaos.
func TestNormalizeConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("normalization conformance sweep skipped in -short")
	}
	rnd := rand.New(rand.NewSource(20260807))
	cfg := loopgen.DefaultConfig()
	for i := 0; i < nNormalizeCases; i++ {
		c := loopgen.GenerateAffine(rnd, cfg)
		var chaosSeed int64
		if i%7 == 0 {
			chaosSeed = int64(i + 1)
		}
		if err := CheckNormalize(c.Affine, c.Twin, c.SymVals, chaosSeed); err != nil {
			reportShrunkAffine(t, c, err, chaosSeed)
			return
		}
	}
}

// TestNormalizeConformanceRoundTrip proves the affine formatter and
// parser agree with the generator: rendering a generated case to DSL
// and re-parsing it yields a nest the pass normalizes to the same twin
// (itself rendered and re-parsed, so both sides are source-level).
func TestNormalizeConformanceRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	cfg := loopgen.DefaultConfig()
	for i := 0; i < 50; i++ {
		c := loopgen.GenerateAffine(rnd, cfg)
		src := c.Source()
		a, err := lang.ParseAffine(src)
		if err != nil {
			t.Fatalf("case %d: generated source does not re-parse: %v\n%s", i, err, src)
		}
		twin, err := lang.Parse(lang.Format(c.Twin))
		if err != nil {
			t.Fatalf("case %d: twin source does not re-parse: %v\n%s", i, err, lang.Format(c.Twin))
		}
		if err := CheckNormalize(a, twin, c.SymVals, 0); err != nil {
			t.Fatalf("case %d: re-parsed case violates conformance: %v\n%s", i, err, src)
		}
	}
}

// TestNormalizeMutationCaught is the dimension's self-test: a corrupted
// twin (one offset nudged) must be detected, and the shrinker must hand
// back a smaller-or-equal affine repro that still fails.
func TestNormalizeMutationCaught(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	cfg := loopgen.DefaultConfig()
	c := loopgen.GenerateAffine(rnd, cfg)
	c.Twin.Body[0].Write.Offset[0]++
	err := CheckNormalize(c.Affine, c.Twin, c.SymVals, 0)
	if err == nil {
		t.Fatal("corrupted twin not detected — the canonical comparison is vacuous")
	}
	t.Logf("mutation caught: %v", err)

	// The shrinker must preserve a real (non-mutated) failure. Use an
	// always-failing property stand-in that still exercises the moves:
	// "the pass accepts the nest" negated never holds, so instead assert
	// shrinking against the detection predicate keeps the failure.
	fails := func(a *lang.AffineNest) bool {
		return CheckNormalize(a, c.Twin, c.SymVals, 0) != nil
	}
	small := loopgen.ShrinkAffine(c.Affine, fails)
	if !fails(small) {
		t.Fatal("shrinker lost the failure")
	}
}
