package conformance

// Normalization conformance: the differential dimension for the affine
// front end. For a generated affine nest and its hand-uniformized twin
// (loopgen.GenerateAffine / loopgen.Uniformize — an independent
// re-implementation of the rewrite rules, not the pass itself),
// CheckNormalize proves that
//
//   - the pass accepts the nest and its output validates as uniformly
//     generated;
//   - the output is canonically identical to the twin (same plan, so
//     every downstream stage — selector, partition, transform, plan
//     store, cluster routing — is byte-identical);
//   - the output preserves the original semantics: running the
//     normalized nest and relabeling every element through the
//     recorded index maps reproduces, bit for bit, the sequential
//     state of the raw nest with its symbolic constants bound;
//   - under all four allocation strategies, oracle, compiled, and
//     specialized-kernel execution of the normalized nest agree with
//     the twin's — final state and machine accounting (messages, data
//     moved, distribution time, per-node workloads) exactly equal;
//   - a seeded chaos schedule perturbs neither.

import (
	"fmt"

	"commfree/internal/chaos"
	"commfree/internal/exec"
	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/normalize"
	"commfree/internal/partition"
)

// CheckNormalize runs the normalization conformance dimension on one
// affine case. chaosSeed ≠ 0 additionally re-executes one strategy
// under a deterministic fault schedule and demands recovery to the
// identical state. A nil return means every property held.
func CheckNormalize(a *lang.AffineNest, twin *loop.Nest, symVals map[string]int64, chaosSeed int64) error {
	res, err := normalize.Apply(a)
	if err != nil {
		return fmt.Errorf("conformance: normalize rejected a normalizable nest: %w", err)
	}
	if err := res.Nest.Validate(); err != nil {
		return fmt.Errorf("conformance: normalized nest invalid: %w", err)
	}
	if got, want := lang.Canonical(res.Nest), lang.Canonical(twin); got != want {
		return fmt.Errorf("conformance: normalized nest diverges from hand-uniformized twin:\n--- normalize ---\n%s\n--- twin ---\n%s", got, want)
	}
	if res.Nest.NumIterations() > maxExecIterations {
		return nil
	}
	if err := checkGrounding(a, res, symVals); err != nil {
		return err
	}
	return checkNormalizedExecution(res.Nest, twin, chaosSeed)
}

// checkGrounding proves the index maps are semantics-preserving: run
// the normalized nest with reads of untouched elements seeded from the
// ORIGINAL element's initial value, then relabel every written element
// back through OldIndex — the result must equal sequential execution of
// the raw nest with its symbolic constants bound.
func checkGrounding(a *lang.AffineNest, res *normalize.Result, symVals map[string]int64) error {
	bound, err := a.Bind(symVals)
	if err != nil {
		return fmt.Errorf("conformance: binding symbolic constants: %w", err)
	}
	want := exec.Sequential(bound, nil)

	got := exec.SequentialInit(res.Nest, nil, func(array string, idx []int64) float64 {
		return exec.InitValue(array, res.OldIndex(array, idx, symVals))
	})
	mapped := make(map[string]float64, len(got))
	for k, v := range got {
		array, idx, perr := exec.ParseKey(k)
		if perr != nil {
			return fmt.Errorf("conformance: %w", perr)
		}
		mapped[exec.Key(array, res.OldIndex(array, idx, symVals))] = v
	}
	if err := exec.Equal(mapped, want); err != nil {
		return fmt.Errorf("conformance: normalized semantics diverge from the raw nest: %w", err)
	}
	return nil
}

// checkNormalizedExecution runs normalized nest and twin through every
// strategy × engine pair and demands bit-identical results and machine
// accounting. The canonical-equality check already makes the plans
// equal; this proves the equality survives the entire execution stack,
// and that a chaos schedule replayed on both sides cannot tell them
// apart.
func checkNormalizedExecution(nest, twin *loop.Nest, chaosSeed int64) error {
	const procs = 4
	cost := machine.Transputer()
	want := exec.Sequential(nest, nil)

	for _, strat := range strategies {
		nres, err := computeFor(nest, strat)
		if err != nil {
			return fmt.Errorf("conformance: %s: partition of normalized nest failed: %w", strat, err)
		}
		tres, err := computeFor(twin, strat)
		if err != nil {
			return fmt.Errorf("conformance: %s: partition of twin failed: %w", strat, err)
		}

		nrep, err := exec.Parallel(nres, procs, cost)
		if err != nil {
			return fmt.Errorf("conformance: %s: oracle execution of normalized nest failed: %w", strat, err)
		}
		trep, err := exec.Parallel(tres, procs, cost)
		if err != nil {
			return fmt.Errorf("conformance: %s: oracle execution of twin failed: %w", strat, err)
		}
		if err := exec.Equal(nrep.Final, want); err != nil {
			return fmt.Errorf("conformance: %s: oracle parallel state diverges from sequential: %w", strat, err)
		}
		if err := compareReports(strat, "oracle", nrep, trep); err != nil {
			return err
		}

		nprog, nerr := exec.CompileNest(nest, nres.Redundant)
		tprog, terr := exec.CompileNest(twin, tres.Redundant)
		if (nerr == nil) != (terr == nil) {
			return fmt.Errorf("conformance: %s: dense-engine compilability differs: normalized %v, twin %v", strat, nerr, terr)
		}
		if nerr == nil {
			ncrep, err := nprog.ParallelBudget(nres, procs, cost, nil)
			if err != nil {
				return fmt.Errorf("conformance: %s: compiled execution of normalized nest failed: %w", strat, err)
			}
			tcrep, err := tprog.ParallelBudget(tres, procs, cost, nil)
			if err != nil {
				return fmt.Errorf("conformance: %s: compiled execution of twin failed: %w", strat, err)
			}
			if err := exec.Equal(ncrep.Final, want); err != nil {
				return fmt.Errorf("conformance: %s: compiled parallel state diverges from sequential: %w", strat, err)
			}
			if err := compareReports(strat, "compiled", ncrep, tcrep); err != nil {
				return err
			}

			nkern, err := nprog.Specialize(nres, procs)
			if err != nil {
				return fmt.Errorf("conformance: %s: kernel specialization of normalized nest failed: %w", strat, err)
			}
			tkern, err := tprog.Specialize(tres, procs)
			if err != nil {
				return fmt.Errorf("conformance: %s: kernel specialization of twin failed: %w", strat, err)
			}
			nkrep, err := nkern.Run(cost, exec.Options{})
			if err != nil {
				return fmt.Errorf("conformance: %s: kernel execution of normalized nest failed: %w", strat, err)
			}
			tkrep, err := tkern.Run(cost, exec.Options{})
			if err != nil {
				return fmt.Errorf("conformance: %s: kernel execution of twin failed: %w", strat, err)
			}
			if err := exec.Equal(nkrep.Final, want); err != nil {
				return fmt.Errorf("conformance: %s: kernel parallel state diverges from sequential: %w", strat, err)
			}
			if err := compareReports(strat, "kernel", nkrep, tkrep); err != nil {
				return err
			}
		}

		if chaosSeed != 0 && strat == partition.Duplicate {
			ncrep, err := exec.ParallelOpts(nres, procs, cost, exec.Options{Chaos: chaos.Default(chaosSeed)})
			if err != nil {
				return fmt.Errorf("conformance: %s: chaos execution of normalized nest failed: %w", strat, err)
			}
			tcrep, err := exec.ParallelOpts(tres, procs, cost, exec.Options{Chaos: chaos.Default(chaosSeed)})
			if err != nil {
				return fmt.Errorf("conformance: %s: chaos execution of twin failed: %w", strat, err)
			}
			if err := exec.Equal(ncrep.Final, want); err != nil {
				return fmt.Errorf("conformance: %s: chaos recovery diverges from sequential: %w", strat, err)
			}
			if err := exec.Equal(ncrep.Final, tcrep.Final); err != nil {
				return fmt.Errorf("conformance: %s: chaos recovery differs between normalized nest and twin: %w", strat, err)
			}
		}
	}
	return nil
}

// compareReports demands that two execution reports are indistinguishable
// in result and machine accounting.
func compareReports(strat partition.Strategy, engine string, a, b *exec.Report) error {
	if err := exec.Equal(a.Final, b.Final); err != nil {
		return fmt.Errorf("conformance: %s/%s: final state differs between normalized nest and twin: %w", strat, engine, err)
	}
	am, bm := a.Machine, b.Machine
	if x, y := am.InterNodeMessages(), bm.InterNodeMessages(); x != y {
		return fmt.Errorf("conformance: %s/%s: inter-node messages differ: %d vs %d", strat, engine, x, y)
	}
	if x, y := am.Messages(), bm.Messages(); x != y {
		return fmt.Errorf("conformance: %s/%s: total messages differ: %d vs %d", strat, engine, x, y)
	}
	if x, y := am.DataMoved(), bm.DataMoved(); x != y {
		return fmt.Errorf("conformance: %s/%s: data moved differs: %d vs %d", strat, engine, x, y)
	}
	if x, y := am.DistributionTime(), bm.DistributionTime(); x != y {
		return fmt.Errorf("conformance: %s/%s: distribution time differs: %v vs %v", strat, engine, x, y)
	}
	if len(a.IterationsPerNode) != len(b.IterationsPerNode) {
		return fmt.Errorf("conformance: %s/%s: node counts differ: %d vs %d", strat, engine, len(a.IterationsPerNode), len(b.IterationsPerNode))
	}
	for i := range a.IterationsPerNode {
		if a.IterationsPerNode[i] != b.IterationsPerNode[i] {
			return fmt.Errorf("conformance: %s/%s: node %d workload differs: %d vs %d", strat, engine, i, a.IterationsPerNode[i], b.IterationsPerNode[i])
		}
	}
	return nil
}
