package conformance

// Membership dimension of the conformance suite: a membership epoch
// must be invisible to clients. Growing or shrinking the fleet changes
// WHERE plans live — exactly the ring-computed moved key set, pushed as
// records old-home → new-home — but never WHAT any request returns:
//
//   - after a join, migrations-in across the fleet equals the number of
//     records whose ring home moved (accounting is exact, so a
//     rebalance provably touches nothing else);
//   - re-requesting the whole corpus returns documents bit-identical to
//     the single-node reference with the fleet-wide compile counter
//     flat — migrated plans are rehydrated, never recompiled — and the
//     rehydrate counter proves the moved plans really took that path;
//   - a departing node pushes every plan it holds to the survivors
//     before going quiet, with the same flat-compile guarantee;
//   - under a seeded migration-drop schedule the dropped records
//     recompile on demand at their new homes: degraded, never wrong,
//     and zero requests lost mid-epoch.

import (
	"context"
	"fmt"

	"commfree/internal/chaos"
	"commfree/internal/cluster"
	"commfree/internal/lang"
	"commfree/internal/service"
)

// CheckMembership runs the membership dimension: an n-node fleet
// absorbs a join (and, when the schedule is clean, a leave), and every
// epoch must preserve bit-identical answers against a single-node
// reference. seed != 0 arms the seed-pure migration-drop schedule.
func CheckMembership(nodes int, engine string, seed int64) error {
	base := service.Config{
		Workers:    4,
		QueueDepth: 64,
		Engine:     engine,
	}
	ref := service.New(base)
	defer ref.Close()

	var opts []cluster.LocalOption
	if seed != 0 {
		opts = append(opts, cluster.WithNodeConfig(func(c *cluster.Config) {
			c.Seed = seed
			// Only the migration fault is armed: crashed peers and
			// dropped heartbeats are the crash dimension's property.
			c.Chaos = chaos.Config{MigrationDropProb: 0.5}
		}))
	}
	fleet, err := cluster.NewLocal(nodes, base, opts...)
	if err != nil {
		return fmt.Errorf("conformance: membership: %w", err)
	}
	defer fleet.Close()

	corpus := clusterCorpus()
	if len(corpus) == 0 {
		return fmt.Errorf("conformance: membership corpus is empty")
	}
	keys := make([]uint64, len(corpus))
	for ci, src := range corpus {
		nest, err := lang.Parse(src)
		if err != nil {
			return fmt.Errorf("conformance: membership: corpus[%d] does not parse: %w", ci, err)
		}
		keys[ci] = cluster.KeyHash(lang.Canonical(nest))
	}

	m := &membershipRun{ref: ref, fleet: fleet, corpus: corpus, docs: map[restartKey]execDoc{}}

	// Epoch 0: populate the fleet and record the reference documents.
	if err := m.sweep("initial"); err != nil {
		return err
	}
	compiles0 := m.total("compiles")
	if compiles0 == 0 {
		return fmt.Errorf("conformance: membership: initial sweep compiled nothing")
	}

	// Epoch 1: join. Exactly the ring-computed moved records migrate
	// (or, under the seeded schedule, are dropped — and counted).
	oldRing := cluster.NewRing(fleet.Names, 0)
	if _, err := fleet.Join(fleet.Names[0], base, opts...); err != nil {
		return fmt.Errorf("conformance: membership: join: %w", err)
	}
	moved := cluster.MovedKeys(oldRing, cluster.NewRing(fleet.Names, 0), keys)
	if len(moved) == 0 {
		return fmt.Errorf("conformance: membership: join moved no corpus key — widen the corpus")
	}
	for i, n := range fleet.Nodes {
		if n.Epoch() != 1 {
			return fmt.Errorf("conformance: membership: %s is on epoch %d after the join (want 1)", fleet.Names[i], n.Epoch())
		}
	}
	wantMoved := int64(len(moved) * len(strategyNames))
	in := m.total("cluster_migrations_in")
	drops := m.total("cluster_migration_drops")
	if in+drops != wantMoved {
		return fmt.Errorf("conformance: membership: join migrated %d + dropped %d records, want exactly %d (the ring-computed moved set)",
			in, drops, wantMoved)
	}
	if seed != 0 && drops == 0 {
		return fmt.Errorf("conformance: membership: seed %d dropped no migration — schedule is vacuous, pick another seed", seed)
	}

	// Re-sweep: bit-identical, and only dropped records may recompile.
	if err := m.sweep("post-join"); err != nil {
		return err
	}
	if gained := m.total("compiles") - compiles0; gained != drops {
		return fmt.Errorf("conformance: membership: post-join sweep recompiled %d plans, want exactly the %d dropped in migration", gained, drops)
	}
	if reh := m.total("rehydrates"); reh < in {
		return fmt.Errorf("conformance: membership: %d rehydrates < %d migrated records — moved plans were not served from their records", reh, in)
	}

	if seed != 0 {
		// The leave's exact accounting assumes every owner holds its
		// records, which dropped migrations deliberately violate.
		return nil
	}

	// Epoch 2: leave. The departing node pushes everything it holds.
	compiles1 := m.total("compiles")
	leaver := fleet.Names[1]
	held := int64(svcOfFleet(fleet, leaver).PlanCount())
	if held == 0 {
		return fmt.Errorf("conformance: membership: %s holds no plans before leaving", leaver)
	}
	inBefore := m.total("cluster_migrations_in")
	doc, err := fleet.Leave(fleet.Names[0], leaver)
	if err != nil {
		return fmt.Errorf("conformance: membership: leave: %w", err)
	}
	if !doc.Applied || doc.Epoch != 2 {
		return fmt.Errorf("conformance: membership: leave answered epoch %d applied=%v (want 2, true)", doc.Epoch, doc.Applied)
	}
	if pushed := m.total("cluster_migrations_in") - inBefore; pushed != held {
		return fmt.Errorf("conformance: membership: leave migrated %d records, want the leaver's full %d", pushed, held)
	}
	if err := m.sweep("post-leave"); err != nil {
		return err
	}
	if gained := m.total("compiles") - compiles1; gained != 0 {
		return fmt.Errorf("conformance: membership: post-leave sweep recompiled %d plans (want 0)", gained)
	}
	return nil
}

// membershipRun carries one CheckMembership's moving parts.
type membershipRun struct {
	ref    *service.Service
	fleet  *cluster.Local
	corpus []string
	docs   map[restartKey]execDoc
	entry  int
}

// sweep executes the corpus × strategies through rotating live entry
// nodes; the first sweep records reference documents (validated against
// the single-node reference), later sweeps must match them exactly.
func (m *membershipRun) sweep(label string) error {
	client := m.fleet.Client()
	for ci, src := range m.corpus {
		for _, strat := range strategyNames {
			k := restartKey{ci, strat}
			req := service.ExecuteRequest{CompileRequest: service.CompileRequest{
				Source: src, Strategy: strat, Processors: clusterProcs,
			}}
			m.entry = (m.entry + 1) % len(m.fleet.Names)
			got, servedBy, err := clusterExecute(client, m.fleet.URL(m.entry), req)
			if err != nil {
				return fmt.Errorf("conformance: membership: %s sweep lost corpus[%d] %s via %s: %w",
					label, ci, strat, m.fleet.Names[m.entry], err)
			}
			d := docOf(got)
			want, seen := m.docs[k]
			if !seen {
				refRes, err := m.ref.Execute(context.Background(), req)
				if err != nil {
					return fmt.Errorf("conformance: membership: reference execute corpus[%d] %s: %w", ci, strat, err)
				}
				if rd := docOf(refRes); d != rd {
					return fmt.Errorf("conformance: membership: corpus[%d] %s: fleet (via %s) diverges from single node:\n single: %+v\n fleet:  %+v",
						ci, strat, servedBy, rd, d)
				}
				m.docs[k] = d
				continue
			}
			if d != want {
				return fmt.Errorf("conformance: membership: corpus[%d] %s drifted on the %s sweep (via %s):\n before: %+v\n after:  %+v",
					ci, strat, label, servedBy, want, d)
			}
		}
	}
	return nil
}

// total sums one counter across the fleet.
func (m *membershipRun) total(name string) int64 {
	var n int64
	for _, s := range m.fleet.Services {
		n += s.Metrics().Counter(name)
	}
	return n
}

// svcOfFleet returns the named node's service.
func svcOfFleet(fleet *cluster.Local, name string) *service.Service {
	for i, n := range fleet.Names {
		if n == name {
			return fleet.Services[i]
		}
	}
	return nil
}
