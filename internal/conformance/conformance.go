// Package conformance is the property-based theorem conformance suite:
// it checks, for arbitrary valid loop nests, every machine-checkable
// guarantee the paper makes. Each property is a theorem (or an
// immediate corollary) of Chen & Sheu:
//
//   - Theorems 1–4: every strategy's partition is communication-free
//     (non-duplicate strategies share no element across blocks at all;
//     duplicate strategies share no flow dependence) — checked
//     exhaustively by partition.Result.Verify;
//   - the duplicate partition space contains no directions the
//     non-duplicate one lacks: Ψ_dup ⊆ Ψ_nondup (duplication only
//     removes constraints), and likewise elimination only removes
//     constraints: Ψ_minimal ⊆ Ψ (the paper's Ψ^r ⊆ Ψ);
//   - consequently dim Ψ_minimal ≤ dim Ψ — eliminating redundant
//     computations never costs parallelism;
//   - the loop transformation T is a bijection on the iteration space:
//     Original(NewPoint(ī)) = ī for every iteration;
//   - the compiled dense engine and the map-based oracle agree on the
//     final sequential state, with and without elimination;
//   - parallel execution under the partition reproduces the sequential
//     state exactly with zero inter-node messages.
//
// The test harness generates nests with loopgen, checks them here, and
// shrinks any failure to a minimal DSL repro (loopgen.Shrink +
// lang.Format).
package conformance

import (
	"fmt"

	"commfree/internal/exec"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/mars"
	"commfree/internal/partition"
	"commfree/internal/transform"
)

// strategies are the strategies checked on every nest: the four
// theorem strategies plus the usage-based MARS extension.
var strategies = []partition.Strategy{
	partition.NonDuplicate,
	partition.Duplicate,
	partition.MinimalNonDuplicate,
	partition.MinimalDuplicate,
	partition.Mars,
}

// computeFor dispatches partitioning by strategy: MARS has its own
// pipeline (partition.Compute rejects it, like Selective).
func computeFor(nest *loop.Nest, strat partition.Strategy) (*partition.Result, error) {
	if strat == partition.Mars {
		return mars.Compute(nest)
	}
	return partition.Compute(nest, strat)
}

// maxExecIterations bounds the nests on which the (comparatively
// expensive) execution-equality properties run; the algebraic
// properties run regardless.
const maxExecIterations = 1 << 12

// CheckNest runs the full conformance suite on one nest, running the
// parallel-execution property under the Duplicate strategy. A nil
// return means every property held.
func CheckNest(nest *loop.Nest) error {
	return Check(nest, partition.Duplicate)
}

// Check is CheckNest with the parallel-execution property run under
// execStrat (callers rotate it so all four schedulers see coverage).
func Check(nest *loop.Nest, execStrat partition.Strategy) error {
	if err := nest.Validate(); err != nil {
		return fmt.Errorf("conformance: input nest invalid: %w", err)
	}
	results := make(map[partition.Strategy]*partition.Result, len(strategies))
	for _, strat := range strategies {
		res, err := computeFor(nest, strat)
		if err != nil {
			return fmt.Errorf("conformance: %s: partition failed: %w", strat, err)
		}
		// Theorems 1–4 (and the MARS flow-closure property): exhaustive
		// communication-freeness.
		if err := res.Verify(); err != nil {
			return fmt.Errorf("conformance: %s: communication-freeness violated: %w", strat, err)
		}
		if err := checkBijectivity(nest, res); err != nil {
			return fmt.Errorf("conformance: %s: %w", strat, err)
		}
		results[strat] = res
	}

	if err := checkInclusions(results); err != nil {
		return err
	}
	if err := checkMars(nest, results); err != nil {
		return err
	}
	if nest.NumIterations() > maxExecIterations {
		return nil
	}
	if err := checkSequentialAgreement(nest, results); err != nil {
		return err
	}
	return checkParallelExecution(nest, results[execStrat])
}

// checkBijectivity verifies Original(NewPoint(ī)) = ī over the whole
// iteration space: the transformation matrix T = [Ψ̄; Ψ] is unimodular
// enough to round-trip every integer point.
func checkBijectivity(nest *loop.Nest, res *partition.Result) error {
	tr, err := transform.Transform(nest, res.Psi)
	if err != nil {
		return fmt.Errorf("transform failed: %w", err)
	}
	var fail error
	nest.Walk(func(it []int64) bool {
		j := tr.NewPoint(it)
		back, ok := tr.Original(j)
		if !ok {
			fail = fmt.Errorf("transform not invertible at %v (image %v)", it, j)
			return false
		}
		for k := range back {
			if back[k] != it[k] {
				fail = fmt.Errorf("transform round-trip %v → %v → %v", it, j, back)
				return false
			}
		}
		return true
	})
	return fail
}

// checkInclusions verifies the partition-space lattice: duplication and
// elimination both only remove constraints, so
// Ψ_dup ⊆ Ψ_nondup, Ψ_minimal ⊆ Ψ_plain, and dim Ψ_minimal ≤ dim Ψ.
func checkInclusions(results map[partition.Strategy]*partition.Result) error {
	nd := results[partition.NonDuplicate]
	du := results[partition.Duplicate]
	mnd := results[partition.MinimalNonDuplicate]
	md := results[partition.MinimalDuplicate]
	for _, incl := range []struct {
		name     string
		sub, sup *partition.Result
	}{
		{"Ψ_dup ⊆ Ψ_nondup", du, nd},
		{"Ψ_min-nondup ⊆ Ψ_nondup (Ψ^r ⊆ Ψ)", mnd, nd},
		{"Ψ_min-dup ⊆ Ψ_dup (Ψ^r ⊆ Ψ)", md, du},
	} {
		if !incl.sub.Psi.SubspaceOf(incl.sup.Psi) {
			return fmt.Errorf("conformance: inclusion %s violated: dim %d vs %d",
				incl.name, incl.sub.Psi.Dim(), incl.sup.Psi.Dim())
		}
	}
	if mnd.Psi.Dim() > nd.Psi.Dim() {
		return fmt.Errorf("conformance: elimination increased dim Ψ: %d > %d (non-duplicate)",
			mnd.Psi.Dim(), nd.Psi.Dim())
	}
	if md.Psi.Dim() > du.Psi.Dim() {
		return fmt.Errorf("conformance: elimination increased dim Ψ: %d > %d (duplicate)",
			md.Psi.Dim(), du.Psi.Dim())
	}
	return nil
}

// checkMars verifies the usage-based partition's extension properties:
//
//   - parallelism dominance: MARS is the finest flow-closed partition,
//     and every verified strategy is flow-closed, so MARS never has
//     fewer blocks than any theorem strategy;
//   - zero redundant-copy volume: MARS allocates with the redundancy
//     oracle applied, so no (block, element) copy exists solely to
//     feed redundant work;
//   - it therefore never exceeds Selective's redundant-copy volume,
//     for any per-array duplication subset.
func checkMars(nest *loop.Nest, results map[partition.Strategy]*partition.Result) error {
	mres := results[partition.Mars]
	for _, strat := range strategies {
		if strat == partition.Mars {
			continue
		}
		if mres.Iter.NumBlocks() < results[strat].Iter.NumBlocks() {
			return fmt.Errorf("conformance: mars has %d blocks, coarser than %s with %d",
				mres.Iter.NumBlocks(), strat, results[strat].Iter.NumBlocks())
		}
	}
	mv := mres.RedundantCopyVolume(mres.Redundant)
	if mv != 0 {
		return fmt.Errorf("conformance: mars redundant-copy volume = %d, want 0", mv)
	}
	arrays := nest.Arrays()
	if len(arrays) > 3 {
		return nil // subset sweep is exponential; the ≤-Selective bound follows from mv = 0
	}
	for mask := 0; mask < 1<<len(arrays); mask++ {
		dup := map[string]bool{}
		for i, a := range arrays {
			if mask&(1<<i) != 0 {
				dup[a] = true
			}
		}
		sel, err := partition.ComputeSelective(nest, dup)
		if err != nil {
			return fmt.Errorf("conformance: selective %v: partition failed: %w", dup, err)
		}
		if sv := sel.RedundantCopyVolume(mres.Redundant); mv > sv {
			return fmt.Errorf("conformance: mars redundant-copy volume %d exceeds selective %v volume %d", mv, dup, sv)
		}
	}
	return nil
}

// checkSequentialAgreement verifies the compiled dense engine against
// the map-based oracle on the sequential semantics, both with the
// redundancy pruning of the minimal strategies and without (Section
// III.C: elimination leaves the final state unchanged).
func checkSequentialAgreement(nest *loop.Nest, results map[partition.Strategy]*partition.Result) error {
	want := exec.Sequential(nest, nil)
	for _, strat := range []partition.Strategy{partition.NonDuplicate, partition.MinimalDuplicate} {
		red := results[strat].Redundant
		if err := exec.Equal(exec.Sequential(nest, red), want); err != nil {
			return fmt.Errorf("conformance: %s: elimination changed the sequential state: %w", strat, err)
		}
		prog, cerr := exec.CompileNest(nest, red)
		if cerr != nil {
			continue // beyond the dense engine's caps — oracle-only nest
		}
		if err := exec.Equal(prog.Sequential(), want); err != nil {
			return fmt.Errorf("conformance: %s: compiled engine diverges from oracle: %w", strat, err)
		}
	}
	return nil
}

// checkParallelExecution runs the partition on the simulated machine —
// oracle scheduler and, when compilable, the dense parallel scheduler —
// and demands the exact sequential state with zero inter-node traffic.
func checkParallelExecution(nest *loop.Nest, res *partition.Result) error {
	const procs = 4
	cost := machine.Transputer()
	want := exec.Sequential(nest, nil)

	rep, err := exec.Parallel(res, procs, cost)
	if err != nil {
		return fmt.Errorf("conformance: %s: oracle parallel execution failed: %w", res.Strategy, err)
	}
	if n := rep.Machine.InterNodeMessages(); n != 0 {
		return fmt.Errorf("conformance: %s: %d inter-node messages during execution", res.Strategy, n)
	}
	if err := exec.Equal(rep.Final, want); err != nil {
		return fmt.Errorf("conformance: %s: oracle parallel state diverges: %w", res.Strategy, err)
	}

	if prog, cerr := exec.CompileNest(nest, res.Redundant); cerr == nil {
		crep, err := prog.ParallelBudget(res, procs, cost, nil)
		if err != nil {
			return fmt.Errorf("conformance: %s: compiled parallel execution failed: %w", res.Strategy, err)
		}
		if err := exec.Equal(crep.Final, want); err != nil {
			return fmt.Errorf("conformance: %s: compiled parallel state diverges: %w", res.Strategy, err)
		}
		kern, serr := prog.Specialize(res, procs)
		if serr != nil {
			return fmt.Errorf("conformance: %s: kernel specialization failed: %w", res.Strategy, serr)
		}
		krep, err := kern.Run(cost, exec.Options{})
		if err != nil {
			return fmt.Errorf("conformance: %s: kernel parallel execution failed: %w", res.Strategy, err)
		}
		if err := exec.Equal(krep.Final, want); err != nil {
			return fmt.Errorf("conformance: %s: kernel parallel state diverges: %w", res.Strategy, err)
		}
	}
	return nil
}
