package conformance

import (
	"math/rand"
	"testing"

	"commfree/internal/lang"
	"commfree/internal/loop"
	"commfree/internal/loopgen"
	"commfree/internal/partition"
)

// nConformanceNests is the generated-nest count of the main property
// test; with five strategies per nest this is the "≥1000 nests × 5
// strategies" conformance sweep.
const nConformanceNests = 1000

// reportShrunk shrinks a failing nest against the violated property and
// reports the minimal DSL repro, so a red run hands the developer a
// paste-able .cf file instead of a random generator draw.
func reportShrunk(t *testing.T, nest *loop.Nest, firstErr error, fails func(*loop.Nest) bool) {
	t.Helper()
	small := loopgen.Shrink(nest, fails)
	t.Errorf("conformance violation: %v\nminimal repro (.cf):\n%s", firstErr, lang.Format(small))
}

func TestConformanceGeneratedNests(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep skipped in -short")
	}
	rnd := rand.New(rand.NewSource(20260806))
	cfg := loopgen.DefaultConfig()
	for i := 0; i < nConformanceNests; i++ {
		nest := loopgen.Generate(rnd, cfg)
		strat := strategies[i%len(strategies)]
		if err := Check(nest, strat); err != nil {
			reportShrunk(t, nest, err, func(n *loop.Nest) bool { return Check(n, strat) != nil })
			return
		}
	}
}

// A second generator shape: deeper, larger extents, full-rank-only
// matrices — exercises the dense engine and the minimal strategies on
// less degenerate spaces.
func TestConformanceWideNests(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance sweep skipped in -short")
	}
	rnd := rand.New(rand.NewSource(42))
	cfg := loopgen.Config{
		MaxDepth: 4, MaxExtent: 5, MaxArrays: 2, MaxStmts: 2,
		MaxReads: 3, MaxCoeff: 1, MaxOffset: 3, AllowSingular: false,
	}
	for i := 0; i < 100; i++ {
		nest := loopgen.Generate(rnd, cfg)
		strat := strategies[i%len(strategies)]
		if err := Check(nest, strat); err != nil {
			reportShrunk(t, nest, err, func(n *loop.Nest) bool { return Check(n, strat) != nil })
			return
		}
	}
}

// Every parseable program of the language corpus (the fuzz seeds,
// including the paper's L1/L2) must be conformant.
func TestConformanceCorpus(t *testing.T) {
	for _, src := range lang.Corpus() {
		nest, err := lang.Parse(src)
		if err != nil {
			continue // deliberate parser-rejection seeds
		}
		if err := CheckNest(nest); err != nil {
			t.Errorf("corpus program violates conformance: %v\nsource:\n%s", err, src)
		}
	}
}

// TestMutationCheckCatchesDuplication is the suite's self-test: verify
// a deliberately broken invariant is caught and shrunk. A Duplicate
// partition checked under the NON-duplicate rule (dupOK=false) must
// fail for any nest whose duplicate partition actually replicates data
// — if this passed, Verify would be vacuous.
func TestMutationCheckCatchesDuplication(t *testing.T) {
	// The broken invariant: Duplicate-strategy partitions satisfy the
	// non-duplicate disjointness rule.
	brokenFails := func(n *loop.Nest) bool {
		res, err := partition.Compute(n, partition.Duplicate)
		if err != nil {
			return false
		}
		return partition.VerifyCommunicationFree(res.Iter, false, res.Redundant) != nil
	}

	rnd := rand.New(rand.NewSource(3))
	cfg := loopgen.DefaultConfig()
	for i := 0; i < 500; i++ {
		nest := loopgen.Generate(rnd, cfg)
		if !brokenFails(nest) {
			continue
		}
		small := loopgen.Shrink(nest, brokenFails)
		if !brokenFails(small) {
			t.Fatalf("shrinker lost the failure")
		}
		if loopgen.Size(small) > loopgen.Size(nest) {
			t.Fatalf("shrinker grew the nest")
		}
		t.Logf("mutation caught (duplicate partition violates non-duplicate rule); minimal repro (.cf):\n%s",
			lang.Format(small))
		return
	}
	t.Fatal("no generated nest exercised data duplication — mutation check is vacuous")
}
