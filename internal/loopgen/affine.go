package loopgen

// Affine-nest generation for the normalization conformance dimension:
// decorate a uniform base nest with exactly the non-uniformities the
// normalize pass claims to handle — symbolic offsets shared by every
// reference of an array, a singleton loop level with per-reference
// coefficients (compensated in the offsets), and uniformly dilated
// subscript rows — and pair it with the hand-uniformized twin computed
// by an independent mini-oracle (Uniformize). The conformance suite
// then proves normalize(affine) ≡ twin in plan, final state, and
// machine accounting.

import (
	"fmt"
	"math/rand"

	"commfree/internal/lang"
	"commfree/internal/loop"
)

// AffineCase is one generated differential test case.
type AffineCase struct {
	// Affine is the decorated nest: structurally valid, possibly
	// non-uniform and symbolic.
	Affine *lang.AffineNest
	// Twin is the hand-uniformized equivalent the pass must reproduce.
	Twin *loop.Nest
	// SymVals grounds every symbolic constant for differential
	// execution of the raw nest.
	SymVals map[string]int64
}

// Source renders the affine nest as DSL (the repro form).
func (c *AffineCase) Source() string { return lang.FormatAffineNest(c.Affine) }

// GenerateAffine draws a uniform base nest from cfg and decorates it
// with at least one normalizable non-uniformity. The returned case's
// Twin is Uniformize of the decorated concrete nest.
func GenerateAffine(rnd *rand.Rand, cfg Config) *AffineCase {
	base := Generate(rnd, cfg)
	nest := cloneNest(base)
	syms := make([]lang.StmtSyms, len(nest.Body))
	for s, st := range nest.Body {
		syms[s] = lang.StmtSyms{
			Write: lang.RefSyms{Rows: make([][]lang.SymTerm, st.Write.Dim())},
			Reads: make([]lang.RefSyms, len(st.Reads)),
		}
		for i, r := range st.Reads {
			syms[s].Reads[i] = lang.RefSyms{Rows: make([][]lang.SymTerm, r.Dim())}
		}
	}
	symVals := map[string]int64{}

	decorated := false
	// Decoration 1: symbolic offsets — every reference of a chosen array
	// gains the identical symbolic sum on one subscript row.
	if rnd.Intn(2) == 0 {
		decorated = decorateSymbolic(rnd, nest, syms, symVals) || decorated
	}
	// Decoration 2: a singleton loop level with per-reference
	// coefficients on arrays with ≥ 2 references, compensated in the
	// offsets so folding restores the base form.
	if !decorated || rnd.Intn(2) == 0 {
		decorated = decorateSingleton(rnd, nest) || decorated
	}
	if !decorated {
		decorated = decorateSymbolic(rnd, nest, syms, symVals)
	}
	// Decoration 3 (optional extra): dilate one subscript row of one
	// array uniformly — compression undoes it.
	if decorated && rnd.Intn(3) == 0 {
		decorateDilation(rnd, nest)
	}
	if !decorated {
		// Base has a single single-reference array everywhere and no row
		// to decorate — fall back to a fresh draw.
		return GenerateAffine(rnd, cfg)
	}
	a := &lang.AffineNest{Nest: nest, Syms: syms}
	return &AffineCase{Affine: a, Twin: Uniformize(nest), SymVals: symVals}
}

// decorateSymbolic adds a shared symbolic offset term to every reference
// of one randomly chosen array (row 0). Returns false when the nest has
// no arrays (impossible for generated nests) — always true otherwise.
func decorateSymbolic(rnd *rand.Rand, nest *loop.Nest, syms []lang.StmtSyms, symVals map[string]int64) bool {
	arrays := nest.Arrays()
	if len(arrays) == 0 {
		return false
	}
	array := arrays[rnd.Intn(len(arrays))]
	name := fmt.Sprintf("d%d", len(symVals)+1)
	coeff := int64(1 + rnd.Intn(2))
	if rnd.Intn(2) == 0 {
		coeff = -coeff
	}
	term := lang.SymTerm{Name: name, Coeff: coeff, Level: -1}
	row := 0
	for s, st := range nest.Body {
		if st.Write.Array == array && row < st.Write.Dim() {
			syms[s].Write.Rows[row] = append(syms[s].Write.Rows[row], term)
		}
		for i, r := range st.Reads {
			if r.Array == array && row < r.Dim() {
				syms[s].Reads[i].Rows[row] = append(syms[s].Reads[i].Rows[row], term)
			}
		}
	}
	symVals[name] = int64(rnd.Intn(7) - 3)
	return true
}

// decorateSingleton appends an innermost loop level pinned to a single
// constant value c, gives every reference of arrays with ≥ 2 references
// its own coefficient in the new column (at least two differing), and
// compensates the offsets so the data indices are unchanged. Returns
// false when no array has two references.
func decorateSingleton(rnd *rand.Rand, nest *loop.Nest) bool {
	counts := map[string]int{}
	for _, st := range nest.Body {
		counts[st.Write.Array]++
		for _, r := range st.Reads {
			counts[r.Array]++
		}
	}
	multi := map[string]bool{}
	for a, n := range counts {
		if n >= 2 {
			multi[a] = true
		}
	}
	if len(multi) == 0 {
		return false
	}
	c := int64(1 + rnd.Intn(3))
	depth := nest.Depth()
	// Extend every bound with a zero column, then append the level.
	for k := range nest.Levels {
		nest.Levels[k].Lower.Coeffs = append(nest.Levels[k].Lower.Coeffs, 0)
		nest.Levels[k].Upper.Coeffs = append(nest.Levels[k].Upper.Coeffs, 0)
	}
	nest.Levels = append(nest.Levels, loop.Level{
		Name:  fmt.Sprintf("i%d", depth+1),
		Lower: loop.ConstAffine(depth+1, c),
		Upper: loop.ConstAffine(depth+1, c),
	})
	// Per-array per-reference coefficients on row 0 of the new column;
	// differing across references so the nest is genuinely non-uniform.
	perArray := map[string]func() int64{}
	for a := range multi {
		seq := 0
		perArray[a] = func() int64 {
			seq++
			// 0, 1, 2, ... then random: guarantees the first two refs
			// differ while later ones vary freely.
			if seq <= 2 {
				return int64(seq - 1)
			}
			return int64(rnd.Intn(5) - 2)
		}
	}
	decorate := func(ref *loop.Ref) {
		q := int64(0)
		if gen, ok := perArray[ref.Array]; ok {
			q = gen()
		}
		for row := range ref.H {
			qq := int64(0)
			if row == 0 {
				qq = q
			}
			ref.H[row] = append(ref.H[row], qq)
			ref.Offset[row] -= qq * c
		}
	}
	for _, st := range nest.Body {
		decorate(&st.Write)
		for i := range st.Reads {
			decorate(&st.Reads[i])
		}
	}
	return true
}

// decorateDilation multiplies one subscript row of one array by g ∈
// {2,3} in every reference and rewrites offsets to g·off + ρ, picking a
// row whose coefficient gcd is 1 so compression recovers exactly the
// undecorated form.
func decorateDilation(rnd *rand.Rand, nest *loop.Nest) {
	type target struct {
		array string
		row   int
	}
	var targets []target
	for _, array := range nest.Arrays() {
		refs, _, _ := nest.RefsOf(array)
		if len(refs) == 0 {
			continue
		}
		for row := range refs[0].H {
			g := int64(0)
			for _, ref := range refs {
				for _, c := range ref.H[row] {
					g = gcd64(g, abs64(c))
				}
			}
			if g == 1 {
				targets = append(targets, target{array: array, row: row})
			}
		}
	}
	if len(targets) == 0 {
		return
	}
	t := targets[rnd.Intn(len(targets))]
	g := int64(2 + rnd.Intn(2))
	rho := int64(rnd.Intn(int(g)))
	for _, st := range nest.Body {
		refs := []*loop.Ref{&st.Write}
		for i := range st.Reads {
			refs = append(refs, &st.Reads[i])
		}
		for _, ref := range refs {
			if ref.Array != t.array {
				continue
			}
			for c := range ref.H[t.row] {
				ref.H[t.row][c] *= g
			}
			ref.Offset[t.row] = g*ref.Offset[t.row] + rho
		}
	}
}

// Uniformize is the independent mini-oracle for the normalize pass's
// concrete rewrites: fold singleton constant levels into offsets, then
// compress uniformly dilated rows (gcd g ≥ 2 with all offsets congruent
// mod g). It deliberately re-implements the rules from the definition —
// not by calling the pass — so the conformance comparison is a true
// differential test. Symbolic terms are not its concern: they live
// beside the nest and normalization simply drops the shared sums.
func Uniformize(nest *loop.Nest) *loop.Nest {
	out := cloneNest(nest)
	refsIn := func(st *loop.Statement) []*loop.Ref {
		rs := []*loop.Ref{&st.Write}
		for i := range st.Reads {
			rs = append(rs, &st.Reads[i])
		}
		return rs
	}
	// Fold: level pinned to constant c contributes H[row][k]·c.
	for k, lv := range out.Levels {
		if !lv.Lower.IsConst() || !lv.Upper.IsConst() || lv.Lower.Const != lv.Upper.Const {
			continue
		}
		c := lv.Lower.Const
		for _, st := range out.Body {
			for _, ref := range refsIn(st) {
				for row := range ref.H {
					if k < len(ref.H[row]) && ref.H[row][k] != 0 {
						ref.Offset[row] += ref.H[row][k] * c
						ref.H[row][k] = 0
					}
				}
			}
		}
	}
	// Compress: per array, per row.
	for _, array := range out.Arrays() {
		var refs []*loop.Ref
		for _, st := range out.Body {
			for _, ref := range refsIn(st) {
				if ref.Array == array {
					refs = append(refs, ref)
				}
			}
		}
		if len(refs) == 0 {
			continue
		}
		for row := range refs[0].H {
			g := int64(0)
			for _, ref := range refs {
				for _, c := range ref.H[row] {
					g = gcd64(g, abs64(c))
				}
			}
			if g < 2 {
				continue
			}
			rho := ((refs[0].Offset[row] % g) + g) % g
			ok := true
			for _, ref := range refs {
				if ((ref.Offset[row]%g)+g)%g != rho {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, ref := range refs {
				for c := range ref.H[row] {
					ref.H[row][c] /= g
				}
				ref.Offset[row] = (ref.Offset[row] - rho) / g
			}
		}
	}
	return out
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ShrinkAffine greedily minimizes an affine nest while fails(nest)
// remains true, mirroring Shrink's moves but without the uniformity
// constraint: drop a statement or read (with its symbolic rows), tighten
// an extent, drop a symbolic term array-wide, and pull per-reference
// coefficients and offsets toward zero. Every candidate still satisfies
// ValidateStructure. The input is never mutated.
func ShrinkAffine(a *lang.AffineNest, fails func(*lang.AffineNest) bool) *lang.AffineNest {
	if !fails(a) {
		return a
	}
	cur := cloneAffineNest(a)
	calls := 0
	for improved := true; improved && calls < shrinkBudget; {
		improved = false
		for _, cand := range affineCandidates(cur) {
			if cand.Nest.ValidateStructure() != nil || Size(cand.Nest) >= Size(cur.Nest) {
				continue
			}
			calls++
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
			if calls >= shrinkBudget {
				break
			}
		}
	}
	return cur
}

func cloneAffineNest(a *lang.AffineNest) *lang.AffineNest {
	out := &lang.AffineNest{Nest: cloneNest(a.Nest), Syms: make([]lang.StmtSyms, len(a.Syms))}
	for s, ss := range a.Syms {
		out.Syms[s] = cloneStmtSyms(ss)
	}
	return out
}

func cloneStmtSyms(ss lang.StmtSyms) lang.StmtSyms {
	out := lang.StmtSyms{Write: cloneRefSyms(ss.Write), Reads: make([]lang.RefSyms, len(ss.Reads))}
	for i, rs := range ss.Reads {
		out.Reads[i] = cloneRefSyms(rs)
	}
	return out
}

func cloneRefSyms(rs lang.RefSyms) lang.RefSyms {
	out := lang.RefSyms{Rows: make([][]lang.SymTerm, len(rs.Rows))}
	for i, row := range rs.Rows {
		out.Rows[i] = append([]lang.SymTerm(nil), row...)
	}
	return out
}

// affineCandidates enumerates one-step shrinks of an affine nest.
func affineCandidates(a *lang.AffineNest) []*lang.AffineNest {
	var out []*lang.AffineNest

	// Drop one statement (with its symbolic rows).
	if len(a.Nest.Body) > 1 {
		for s := range a.Nest.Body {
			c := cloneAffineNest(a)
			c.Nest.Body = append(c.Nest.Body[:s], c.Nest.Body[s+1:]...)
			if s < len(c.Syms) {
				c.Syms = append(c.Syms[:s], c.Syms[s+1:]...)
			}
			out = append(out, c)
		}
	}

	// Drop one read (with its symbolic rows).
	for s, st := range a.Nest.Body {
		for r := range st.Reads {
			c := cloneAffineNest(a)
			c.Nest.Body[s].Reads = append(c.Nest.Body[s].Reads[:r], c.Nest.Body[s].Reads[r+1:]...)
			if s < len(c.Syms) && r < len(c.Syms[s].Reads) {
				c.Syms[s].Reads = append(c.Syms[s].Reads[:r], c.Syms[s].Reads[r+1:]...)
			}
			out = append(out, c)
		}
	}

	// Tighten a constant extent.
	for k, lv := range a.Nest.Levels {
		if !lv.Lower.IsConst() || !lv.Upper.IsConst() {
			continue
		}
		if ext := lv.Upper.Const - lv.Lower.Const + 1; ext > 2 {
			c := cloneAffineNest(a)
			c.Nest.Levels[k].Upper.Const = lv.Lower.Const + 1
			out = append(out, c)
			c = cloneAffineNest(a)
			c.Nest.Levels[k].Upper.Const = lv.Upper.Const - 1
			out = append(out, c)
		}
	}

	// Drop one symbolic term everywhere it appears (term identity =
	// name), keeping the shared-sum invariant intact.
	for _, name := range a.SymNames() {
		c := cloneAffineNest(a)
		for s := range c.Syms {
			dropTerm(&c.Syms[s].Write, name)
			for i := range c.Syms[s].Reads {
				dropTerm(&c.Syms[s].Reads[i], name)
			}
		}
		out = append(out, c)
	}

	// Halve one H entry or offset of one reference toward zero.
	for s, st := range a.Nest.Body {
		for ri := -1; ri < len(st.Reads); ri++ {
			ref := st.Write
			if ri >= 0 {
				ref = st.Reads[ri]
			}
			for row := range ref.H {
				for col, v := range ref.H[row] {
					if v == 0 {
						continue
					}
					c := cloneAffineNest(a)
					tgt := &c.Nest.Body[s].Write
					if ri >= 0 {
						tgt = &c.Nest.Body[s].Reads[ri]
					}
					tgt.H[row][col] = v / 2
					out = append(out, c)
				}
				if o := ref.Offset[row]; o != 0 {
					c := cloneAffineNest(a)
					tgt := &c.Nest.Body[s].Write
					if ri >= 0 {
						tgt = &c.Nest.Body[s].Reads[ri]
					}
					tgt.Offset[row] = o / 2
					out = append(out, c)
				}
			}
		}
	}
	return out
}

func dropTerm(rs *lang.RefSyms, name string) {
	for i, row := range rs.Rows {
		var keep []lang.SymTerm
		for _, t := range row {
			if t.Name != name {
				keep = append(keep, t)
			}
		}
		rs.Rows[i] = keep
	}
}
