package loopgen

// Greedy test-case shrinking: given a nest on which some predicate
// fails, Shrink searches for a structurally smaller nest on which it
// still fails, so conformance failures are reported as minimal DSL
// repros instead of whatever the generator happened to draw. The moves
// mirror the generator's degrees of freedom — drop a statement, drop a
// read, tighten an extent, drop a whole loop level (with its H column),
// and pull coefficients/offsets toward zero — and every candidate is
// re-validated, so per-array uniform generation is preserved (H edits
// apply to all references of the array at once).

import "commfree/internal/loop"

// shrinkBudget caps predicate evaluations per Shrink call; the
// predicate typically runs the full partition pipeline, so the search
// is bounded rather than exhaustive.
const shrinkBudget = 400

// Shrink greedily minimizes nest while fails(nest) remains true. The
// input nest is never mutated; if fails(nest) is false it is returned
// unchanged.
func Shrink(nest *loop.Nest, fails func(*loop.Nest) bool) *loop.Nest {
	if !fails(nest) {
		return nest
	}
	cur := cloneNest(nest)
	calls := 0
	for improved := true; improved && calls < shrinkBudget; {
		improved = false
		for _, cand := range candidates(cur) {
			if cand.Validate() != nil || Size(cand) >= Size(cur) {
				continue
			}
			calls++
			if fails(cand) {
				cur = cand
				improved = true
				break
			}
			if calls >= shrinkBudget {
				break
			}
		}
	}
	return cur
}

// Size orders nests for the greedy descent: iteration-space volume
// dominates, then depth, statements, reads, and coefficient magnitude.
// Shrink only ever returns a nest with Size ≤ the input's.
func Size(n *loop.Nest) int64 {
	iters := int64(1)
	for _, lv := range n.Levels {
		ext := lv.Upper.Const - lv.Lower.Const + 1
		if ext < 1 {
			ext = 1
		}
		iters *= ext
	}
	s := iters*10 + int64(len(n.Levels))*1000
	for _, st := range n.Body {
		s += 500 + int64(len(st.Reads))*100
		for _, r := range refsOf(st) {
			for _, row := range r.H {
				for _, c := range row {
					s += abs64(c)
				}
			}
			for _, o := range r.Offset {
				s += abs64(o)
			}
		}
	}
	return s
}

func refsOf(st *loop.Statement) []loop.Ref {
	return append([]loop.Ref{st.Write}, st.Reads...)
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func cloneNest(n *loop.Nest) *loop.Nest {
	out := &loop.Nest{
		Levels: make([]loop.Level, len(n.Levels)),
		Body:   make([]*loop.Statement, len(n.Body)),
	}
	for k, lv := range n.Levels {
		out.Levels[k] = loop.Level{Name: lv.Name, Lower: cloneAffine(lv.Lower), Upper: cloneAffine(lv.Upper)}
	}
	for s, st := range n.Body {
		cp := &loop.Statement{
			Label:     st.Label,
			Write:     cloneRef(st.Write),
			Expr:      st.Expr,
			Render:    st.Render,
			Tree:      st.Tree,
			SourceRHS: st.SourceRHS,
		}
		for _, r := range st.Reads {
			cp.Reads = append(cp.Reads, cloneRef(r))
		}
		out.Body[s] = cp
	}
	return out
}

func cloneAffine(a loop.Affine) loop.Affine {
	return loop.Affine{Coeffs: append([]int64(nil), a.Coeffs...), Const: a.Const}
}

func cloneRef(r loop.Ref) loop.Ref {
	h := make([][]int64, len(r.H))
	for i := range h {
		h[i] = append([]int64(nil), r.H[i]...)
	}
	return loop.Ref{Array: r.Array, H: h, Offset: append([]int64(nil), r.Offset...)}
}

// candidates enumerates all one-step shrinks of n, biggest wins first
// (statement drops before coefficient nudges).
func candidates(n *loop.Nest) []*loop.Nest {
	var out []*loop.Nest

	// Drop one statement.
	if len(n.Body) > 1 {
		for s := range n.Body {
			c := cloneNest(n)
			c.Body = append(c.Body[:s], c.Body[s+1:]...)
			out = append(out, c)
		}
	}

	// Drop one loop level (and its column from every bound and H).
	if len(n.Levels) > 2 {
		for k := range n.Levels {
			if c, ok := dropLevel(n, k); ok {
				out = append(out, c)
			}
		}
	}

	// Drop one read.
	for s, st := range n.Body {
		for r := range st.Reads {
			c := cloneNest(n)
			c.Body[s].Reads = append(c.Body[s].Reads[:r], c.Body[s].Reads[r+1:]...)
			out = append(out, c)
		}
	}

	// Tighten a constant extent: first all the way to 2, then by one.
	for k, lv := range n.Levels {
		if !lv.Lower.IsConst() || !lv.Upper.IsConst() {
			continue
		}
		if ext := lv.Upper.Const - lv.Lower.Const + 1; ext > 2 {
			c := cloneNest(n)
			c.Levels[k].Upper.Const = lv.Lower.Const + 1
			out = append(out, c)
			c = cloneNest(n)
			c.Levels[k].Upper.Const = lv.Upper.Const - 1
			out = append(out, c)
		}
	}

	// Halve one shared H coefficient toward zero — applied to every
	// reference of the array so uniform generation survives.
	for _, mv := range hMoves(n) {
		out = append(out, mv)
	}

	// Halve one offset entry toward zero (offsets are per-reference).
	for s, st := range n.Body {
		for ri := -1; ri < len(st.Reads); ri++ {
			ref := st.Write
			if ri >= 0 {
				ref = st.Reads[ri]
			}
			for row, o := range ref.Offset {
				if o == 0 {
					continue
				}
				c := cloneNest(n)
				tgt := &c.Body[s].Write
				if ri >= 0 {
					tgt = &c.Body[s].Reads[ri]
				}
				tgt.Offset[row] = o / 2
				out = append(out, c)
			}
		}
	}
	return out
}

// dropLevel removes level k when no bound references it; every H loses
// column k.
func dropLevel(n *loop.Nest, k int) (*loop.Nest, bool) {
	for _, lv := range n.Levels {
		if lv.Lower.Coeffs[k] != 0 || lv.Upper.Coeffs[k] != 0 {
			return nil, false
		}
	}
	c := cloneNest(n)
	c.Levels = append(c.Levels[:k], c.Levels[k+1:]...)
	for i := range c.Levels {
		c.Levels[i].Lower.Coeffs = dropCol(c.Levels[i].Lower.Coeffs, k)
		c.Levels[i].Upper.Coeffs = dropCol(c.Levels[i].Upper.Coeffs, k)
	}
	for _, st := range c.Body {
		for i := range st.Write.H {
			st.Write.H[i] = dropCol(st.Write.H[i], k)
		}
		for r := range st.Reads {
			for i := range st.Reads[r].H {
				st.Reads[r].H[i] = dropCol(st.Reads[r].H[i], k)
			}
		}
	}
	return c, true
}

func dropCol(row []int64, k int) []int64 {
	return append(row[:k], row[k+1:]...)
}

// hMoves halves one nonzero H entry toward zero, simultaneously in
// every reference of that array (only when all of them still share one
// reference matrix — always true for generated nests).
func hMoves(n *loop.Nest) []*loop.Nest {
	shapes := map[string]loop.Ref{}
	uniform := map[string]bool{}
	for _, st := range n.Body {
		for _, r := range refsOf(st) {
			if first, ok := shapes[r.Array]; !ok {
				shapes[r.Array] = r
				uniform[r.Array] = true
			} else if !first.SameFunction(r) {
				uniform[r.Array] = false
			}
		}
	}
	var out []*loop.Nest
	for name, ref := range shapes {
		if !uniform[name] {
			continue
		}
		for i := range ref.H {
			for j, v := range ref.H[i] {
				if v == 0 {
					continue
				}
				c := cloneNest(n)
				for _, st := range c.Body {
					if st.Write.Array == name {
						st.Write.H[i][j] = v / 2
					}
					for r := range st.Reads {
						if st.Reads[r].Array == name {
							st.Reads[r].H[i][j] = v / 2
						}
					}
				}
				out = append(out, c)
			}
		}
	}
	return out
}
