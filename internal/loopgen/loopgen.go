// Package loopgen generates random—but always valid—loop nests for
// property-based testing of the whole pipeline: every generated nest has
// normalized bounds and uniformly generated references, so the theorems'
// guarantees (communication-free partitions, transform bijectivity,
// execution equivalence) must hold on it.
package loopgen

import (
	"fmt"
	"math/rand"

	"commfree/internal/loop"
)

// Config bounds the generated shapes.
type Config struct {
	MaxDepth      int  // loop nest depth ∈ [2, MaxDepth]
	MaxExtent     int  // per-level upper bound ∈ [2, MaxExtent]
	MaxArrays     int  // distinct arrays ∈ [1, MaxArrays]
	MaxStmts      int  // statements ∈ [1, MaxStmts]
	MaxReads      int  // reads per statement ∈ [0, MaxReads]
	MaxCoeff      int  // |H entries| ≤ MaxCoeff
	MaxOffset     int  // |offset entries| ≤ MaxOffset
	AllowSingular bool // allow rank-deficient reference matrices
}

// DefaultConfig is a small shape that exercises all code paths quickly.
func DefaultConfig() Config {
	return Config{
		MaxDepth:      3,
		MaxExtent:     4,
		MaxArrays:     3,
		MaxStmts:      3,
		MaxReads:      2,
		MaxCoeff:      2,
		MaxOffset:     2,
		AllowSingular: true,
	}
}

// Generate returns a random valid nest drawn from cfg.
func Generate(rnd *rand.Rand, cfg Config) *loop.Nest {
	for attempt := 0; ; attempt++ {
		n := tryGenerate(rnd, cfg)
		if err := n.Validate(); err == nil {
			return n
		}
		if attempt > 100 {
			panic(fmt.Errorf("loopgen: could not generate a valid nest in 100 attempts"))
		}
	}
}

// GenerateUsage returns a random valid nest biased toward non-trivial
// usage structure: an extra statement is inserted that writes some
// array through the same reference an existing statement writes, so
// the earlier write of each element is overwritten (usually making it
// redundant), and its reads give the overwritten values partial-
// overlap consumer sets. MARS-versus-Selective properties (redundant-
// copy volume, atomic-set grouping) need such nests to be non-vacuous;
// plain Generate produces them only rarely.
func GenerateUsage(rnd *rand.Rand, cfg Config) *loop.Nest {
	for attempt := 0; ; attempt++ {
		n := injectOverwrite(rnd, tryGenerate(rnd, cfg))
		if err := n.Validate(); err == nil {
			return n
		}
		if attempt > 100 {
			panic(fmt.Errorf("loopgen: could not generate a valid usage nest in 100 attempts"))
		}
	}
}

// injectOverwrite inserts, before a randomly chosen statement, a clone
// writing the same reference: the clone's writes are overwritten
// element-for-element by the original, so they are redundant whenever
// no intervening read consumes them. The clone reads through existing
// reference shapes, keeping the nest uniformly generated.
func injectOverwrite(rnd *rand.Rand, n *loop.Nest) *loop.Nest {
	si := rnd.Intn(len(n.Body))
	target := n.Body[si]
	clone := &loop.Statement{Write: copyRef(target.Write)}
	// Borrow up to two read references from anywhere in the body so the
	// doomed values can have (partially overlapping) consumers upstream.
	var pool []loop.Ref
	for _, st := range n.Body {
		pool = append(pool, st.Reads...)
	}
	for r := 0; r < 2 && len(pool) > 0; r++ {
		pick := copyRef(pool[rnd.Intn(len(pool))])
		for i := range pick.Offset {
			pick.Offset[i] += int64(rnd.Intn(3) - 1)
		}
		clone.Reads = append(clone.Reads, pick)
	}
	body := make([]*loop.Statement, 0, len(n.Body)+1)
	body = append(body, n.Body[:si]...)
	body = append(body, clone)
	body = append(body, n.Body[si:]...)
	for i, st := range body {
		st.Label = fmt.Sprintf("S%d", i+1)
	}
	return &loop.Nest{Levels: n.Levels, Body: body}
}

func copyRef(r loop.Ref) loop.Ref {
	h := make([][]int64, len(r.H))
	for i := range h {
		h[i] = append([]int64(nil), r.H[i]...)
	}
	return loop.Ref{Array: r.Array, H: h, Offset: append([]int64(nil), r.Offset...)}
}

func tryGenerate(rnd *rand.Rand, cfg Config) *loop.Nest {
	depth := 2
	if cfg.MaxDepth > 2 {
		depth += rnd.Intn(cfg.MaxDepth - 1)
	}
	levels := make([]loop.Level, depth)
	for k := range levels {
		extent := 2 + rnd.Intn(cfg.MaxExtent-1)
		levels[k] = loop.Level{
			Name:  fmt.Sprintf("i%d", k+1),
			Lower: loop.ConstAffine(depth, 1),
			Upper: loop.ConstAffine(depth, int64(extent)),
		}
	}

	// One reference matrix per array, shared by all its references
	// (uniform generation by construction).
	nArrays := 1 + rnd.Intn(cfg.MaxArrays)
	type arrayShape struct {
		name string
		h    [][]int64
	}
	arrays := make([]arrayShape, nArrays)
	for a := range arrays {
		d := 1 + rnd.Intn(depth) // array dimensionality ≤ depth
		h := make([][]int64, d)
		for i := range h {
			h[i] = make([]int64, depth)
			nonzero := false
			for j := range h[i] {
				c := int64(rnd.Intn(2*cfg.MaxCoeff+1) - cfg.MaxCoeff)
				h[i][j] = c
				if c != 0 {
					nonzero = true
				}
			}
			if !nonzero {
				h[i][rnd.Intn(depth)] = 1
			}
		}
		arrays[a] = arrayShape{name: fmt.Sprintf("%c", 'A'+a), h: h}
	}
	if !cfg.AllowSingular {
		// Replace each H with an identity-ish full-rank matrix.
		for a := range arrays {
			d := len(arrays[a].h)
			for i := 0; i < d; i++ {
				for j := range arrays[a].h[i] {
					arrays[a].h[i][j] = 0
				}
				arrays[a].h[i][i%depth] = 1
			}
		}
	}

	randomRef := func(a arrayShape) loop.Ref {
		off := make([]int64, len(a.h))
		for i := range off {
			off[i] = int64(rnd.Intn(2*cfg.MaxOffset+1) - cfg.MaxOffset)
		}
		h := make([][]int64, len(a.h))
		for i := range h {
			h[i] = append([]int64(nil), a.h[i]...)
		}
		return loop.Ref{Array: a.name, H: h, Offset: off}
	}

	nStmts := 1 + rnd.Intn(cfg.MaxStmts)
	body := make([]*loop.Statement, nStmts)
	for s := range body {
		st := &loop.Statement{
			Label: fmt.Sprintf("S%d", s+1),
			Write: randomRef(arrays[rnd.Intn(nArrays)]),
		}
		nReads := rnd.Intn(cfg.MaxReads + 1)
		for r := 0; r < nReads; r++ {
			st.Reads = append(st.Reads, randomRef(arrays[rnd.Intn(nArrays)]))
		}
		body[s] = st
	}
	return &loop.Nest{Levels: levels, Body: body}
}
