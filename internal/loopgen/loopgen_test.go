package loopgen

import (
	"fmt"
	"math/rand"
	"testing"

	"commfree/internal/assign"
	"commfree/internal/distplan"
	"commfree/internal/exec"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/partition"
	"commfree/internal/selector"
	"commfree/internal/transform"
)

func TestGenerateAlwaysValid(t *testing.T) {
	rnd := rand.New(rand.NewSource(100))
	cfg := DefaultConfig()
	for i := 0; i < 200; i++ {
		n := Generate(rnd, cfg)
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, n)
		}
		if n.NumIterations() == 0 {
			t.Fatalf("trial %d: empty iteration space", i)
		}
	}
}

// TestPropPartitionsCommunicationFree is the pipeline soundness property:
// every strategy's partition of every random nest must verify
// communication-free.
func TestPropPartitionsCommunicationFree(t *testing.T) {
	rnd := rand.New(rand.NewSource(101))
	cfg := DefaultConfig()
	strategies := []partition.Strategy{
		partition.NonDuplicate, partition.Duplicate,
		partition.MinimalNonDuplicate, partition.MinimalDuplicate,
	}
	for i := 0; i < 60; i++ {
		n := Generate(rnd, cfg)
		for _, s := range strategies {
			res, err := partition.Compute(n, s)
			if err != nil {
				t.Fatalf("trial %d %s: %v\n%s", i, s, err, n)
			}
			if err := res.Verify(); err != nil {
				t.Fatalf("trial %d %s: partition not communication-free: %v\n%s", i, s, err, n)
			}
		}
	}
}

// TestPropDuplicateAtLeastAsParallel: the duplicate strategy never has a
// larger partitioning space than the non-duplicate one, and minimal
// variants never exceed their non-minimal counterparts.
func TestPropStrategyMonotonicity(t *testing.T) {
	rnd := rand.New(rand.NewSource(102))
	cfg := DefaultConfig()
	for i := 0; i < 60; i++ {
		n := Generate(rnd, cfg)
		nd, err := partition.Compute(n, partition.NonDuplicate)
		if err != nil {
			t.Fatal(err)
		}
		dup, err := partition.Compute(n, partition.Duplicate)
		if err != nil {
			t.Fatal(err)
		}
		mnd, err := partition.Compute(n, partition.MinimalNonDuplicate)
		if err != nil {
			t.Fatal(err)
		}
		mdup, err := partition.Compute(n, partition.MinimalDuplicate)
		if err != nil {
			t.Fatal(err)
		}
		if !dup.Psi.SubspaceOf(nd.Psi) {
			t.Fatalf("trial %d: Ψʳ=%s ⊄ Ψ=%s\n%s", i, dup.Psi, nd.Psi, n)
		}
		if !mnd.Psi.SubspaceOf(nd.Psi) {
			t.Fatalf("trial %d: Ψ^min=%s ⊄ Ψ=%s\n%s", i, mnd.Psi, nd.Psi, n)
		}
		if !mdup.Psi.SubspaceOf(dup.Psi) {
			t.Fatalf("trial %d: Ψ^minʳ=%s ⊄ Ψʳ=%s\n%s", i, mdup.Psi, dup.Psi, n)
		}
		// More parallelism = at least as many blocks.
		if dup.Iter.NumBlocks() < nd.Iter.NumBlocks() {
			t.Fatalf("trial %d: duplicate blocks %d < non-duplicate %d",
				i, dup.Iter.NumBlocks(), nd.Iter.NumBlocks())
		}
	}
}

// TestPropTransformBijective: the forall-form enumeration covers the
// iteration space exactly once for random nests and strategies.
func TestPropTransformBijective(t *testing.T) {
	rnd := rand.New(rand.NewSource(103))
	cfg := DefaultConfig()
	for i := 0; i < 40; i++ {
		n := Generate(rnd, cfg)
		strat := []partition.Strategy{partition.NonDuplicate, partition.Duplicate}[rnd.Intn(2)]
		res, err := partition.Compute(n, strat)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := transform.Transform(n, res.Psi)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, n)
		}
		seen := map[string]bool{}
		tr.Visit(nil, func(_, orig []int64) {
			k := fmt.Sprint(orig)
			if seen[k] {
				t.Fatalf("trial %d: %v twice\n%s", i, orig, n)
			}
			seen[k] = true
		})
		if int64(len(seen)) != n.NumIterations() {
			t.Fatalf("trial %d: enumerated %d of %d\n%s", i, len(seen), n.NumIterations(), n)
		}
	}
}

// TestPropParallelExecutionEquivalent: simulated parallel execution under
// any strategy reproduces sequential results with zero communication.
func TestPropParallelExecutionEquivalent(t *testing.T) {
	rnd := rand.New(rand.NewSource(104))
	cfg := DefaultConfig()
	strategies := []partition.Strategy{
		partition.NonDuplicate, partition.Duplicate, partition.MinimalDuplicate,
	}
	for i := 0; i < 30; i++ {
		n := Generate(rnd, cfg)
		strat := strategies[rnd.Intn(len(strategies))]
		procs := 1 + rnd.Intn(4)
		res, err := partition.Compute(n, strat)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := exec.Parallel(res, procs, machine.Transputer())
		if err != nil {
			t.Fatalf("trial %d (%s, p=%d): %v\n%s", i, strat, procs, err, n)
		}
		if rep.Machine.InterNodeMessages() != 0 {
			t.Fatalf("trial %d: communication during execution\n%s", i, n)
		}
		want := exec.Sequential(n, nil)
		if err := exec.Equal(want, rep.Final); err != nil {
			t.Fatalf("trial %d (%s, p=%d): %v\n%s", i, strat, procs, err, n)
		}
	}
}

// TestPropAssignmentCoversAllBlocks: every block lands on exactly one
// processor and total work is conserved.
func TestPropAssignmentConservation(t *testing.T) {
	rnd := rand.New(rand.NewSource(105))
	cfg := DefaultConfig()
	for i := 0; i < 40; i++ {
		n := Generate(rnd, cfg)
		res, err := partition.Compute(n, partition.Duplicate)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := transform.Transform(n, res.Psi)
		if err != nil {
			t.Fatal(err)
		}
		p := 1 + rnd.Intn(8)
		asg := assign.Assign(tr, p)
		var sum int64
		for _, l := range asg.Workloads() {
			sum += l
		}
		if sum != n.NumIterations() {
			t.Fatalf("trial %d: workloads sum %d != %d iterations\n%s", i, sum, n.NumIterations(), n)
		}
	}
}

// TestPropPlannedDistributionEquivalent: plan-based distribution (consumer
// set grouping) must execute random nests exactly like per-node unicast.
func TestPropPlannedDistributionEquivalent(t *testing.T) {
	rnd := rand.New(rand.NewSource(107))
	cfg := DefaultConfig()
	for i := 0; i < 20; i++ {
		n := Generate(rnd, cfg)
		res, err := partition.Compute(n, partition.Duplicate)
		if err != nil {
			t.Fatal(err)
		}
		rep, plan, err := distplan.ParallelPlanned(res, 1+rnd.Intn(4), machine.Transputer())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, n)
		}
		if rep.Machine.InterNodeMessages() != 0 {
			t.Fatalf("trial %d: communication with planned distribution\nplan:\n%s\n%s", i, plan, n)
		}
		want := exec.Sequential(n, nil)
		if err := exec.Equal(want, rep.Final); err != nil {
			t.Fatalf("trial %d: %v\nplan:\n%s\n%s", i, err, plan, n)
		}
	}
}

// TestPropSelectorCandidatesAllVerify: every candidate the selector
// prices corresponds to a verifiable communication-free partition.
func TestPropSelectorCandidatesAllVerify(t *testing.T) {
	rnd := rand.New(rand.NewSource(108))
	cfg := DefaultConfig()
	cfg.MaxArrays = 2 // keep the selective power set small
	for i := 0; i < 10; i++ {
		n := Generate(rnd, cfg)
		best, all, err := selector.Best(n, 4, machine.Transputer())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", i, err, n)
		}
		if len(all) == 0 || best.Total > all[len(all)-1].Total {
			t.Fatalf("trial %d: ranking broken", i)
		}
		for _, c := range all {
			if c.Total < 0 || c.Blocks < 1 {
				t.Fatalf("trial %d: degenerate candidate %s", i, c)
			}
		}
	}
}

func TestGenerateNonSingularConfig(t *testing.T) {
	rnd := rand.New(rand.NewSource(106))
	cfg := DefaultConfig()
	cfg.AllowSingular = false
	for i := 0; i < 50; i++ {
		n := Generate(rnd, cfg)
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), DefaultConfig())
	b := Generate(rand.New(rand.NewSource(7)), DefaultConfig())
	if a.String() != b.String() {
		t.Error("generation not deterministic for equal seeds")
	}
}

var _ = loop.LexLess // keep the import referenced if helpers change
