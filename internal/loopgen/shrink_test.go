package loopgen

import (
	"math/rand"
	"testing"

	"commfree/internal/loop"
)

// With an always-failing predicate the shrinker should drive any
// generated nest to the structural floor: depth 2, one statement, no
// reads, extent-2 levels.
func TestShrinkReachesFloor(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	cfg := DefaultConfig()
	for trial := 0; trial < 25; trial++ {
		n := Generate(rnd, cfg)
		s := Shrink(n, func(*loop.Nest) bool { return true })
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: shrunk nest invalid: %v", trial, err)
		}
		if len(s.Levels) != 2 {
			t.Errorf("trial %d: depth %d, want 2", trial, len(s.Levels))
		}
		if len(s.Body) != 1 {
			t.Errorf("trial %d: %d statements, want 1", trial, len(s.Body))
		}
		if len(s.Body[0].Reads) != 0 {
			t.Errorf("trial %d: %d reads, want 0", trial, len(s.Body[0].Reads))
		}
		for k, lv := range s.Levels {
			if ext := lv.Upper.Const - lv.Lower.Const + 1; ext != 2 {
				t.Errorf("trial %d: level %d extent %d, want 2", trial, k, ext)
			}
		}
	}
}

// The shrunk nest must still fail the predicate, and the input must
// never be mutated.
func TestShrinkPreservesFailure(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	cfg := DefaultConfig()
	for trial := 0; trial < 25; trial++ {
		n := Generate(rnd, cfg)
		orig := loopString(n)
		// "Fails" iff some statement writes the first generated array.
		fails := func(m *loop.Nest) bool {
			for _, st := range m.Body {
				if st.Write.Array == "A" {
					return true
				}
			}
			return false
		}
		s := Shrink(n, fails)
		if loopString(n) != orig {
			t.Fatalf("trial %d: Shrink mutated its input", trial)
		}
		if fails(n) && !fails(s) {
			t.Fatalf("trial %d: shrunk nest no longer fails", trial)
		}
		if !fails(n) && s != n {
			t.Fatalf("trial %d: passing nest was not returned unchanged", trial)
		}
	}
}

func loopString(n *loop.Nest) string { return n.String() }
