// Package baseline implements the comparison method of Ramanujam &
// Sadayappan ("Compile-time techniques for data distribution in
// distributed memory machines", IEEE TPDS 2(4), 1991), against which the
// paper positions its partitioner.
//
// Their method applies to For-all loops (no loop-carried flow dependence)
// and searches for communication-free partitionings along
// (n−1)-dimensional hyperplanes: an iteration hyperplane normal ḡ such
// that, for every array A, some data hyperplane normal w̄_A satisfies
//
//	w̄_Aᵀ·H_A ∥ ḡ   and   w̄_Aᵀ·r̄ = 0 for every data-referenced vector r̄.
//
// Then iterations with equal ḡ·ī and the elements they touch form
// matching hyperplane families with no cross-family access. Because the
// partition is always (n−1)-dimensional, the method exposes at most a
// one-dimensional family of parallel blocks; the paper's Theorems 1–2 can
// do strictly better whenever dim(Ψ) < n−1.
package baseline

import (
	"fmt"

	"commfree/internal/deps"
	"commfree/internal/intlin"
	"commfree/internal/linalg"
	"commfree/internal/loop"
	"commfree/internal/rational"
	"commfree/internal/space"
)

// Result reports the outcome of the hyperplane search.
type Result struct {
	// Applicable is false when the loop is not a For-all loop (it carries
	// a loop-carried flow dependence), in which case the method does not
	// apply — the situation the paper calls out for L1.
	Applicable bool
	// Found reports whether a communication-free hyperplane exists.
	Found bool
	// G is the iteration-hyperplane normal (primitive integer vector).
	G []int64
	// Psi is the induced partitioning space Ker(ḡ) = {t̄ : ḡ·t̄ = 0},
	// always of dimension n−1 when Found.
	Psi *space.Space
	// NumBlocks is the number of hyperplane blocks over the nest's
	// iteration space (the method's degree of parallelism).
	NumBlocks int
}

// Hyperplane runs the baseline partitioner on a validated nest.
func Hyperplane(nest *loop.Nest) (*Result, error) {
	a, err := deps.Analyze(nest)
	if err != nil {
		return nil, err
	}
	res := &Result{Applicable: true}
	// For-all check: any flow dependence with a nonzero realizable
	// distance makes the loop non-For-all.
	for _, d := range a.AllDependences() {
		if d.Kind != deps.Flow {
			continue
		}
		if d.Distance == nil || !isZero(d.Distance) {
			res.Applicable = false
			return res, nil
		}
	}

	n := nest.Depth()
	// Candidate ḡ directions per array: {H_Aᵀ·w̄ : w̄ ⟂ every r̄ of A}.
	gSpace := space.Full(n)
	for _, array := range nest.Arrays() {
		h := nest.ReferenceMatrix(array)
		d := len(h)
		// w̄ constraint space: null space of the matrix whose rows are the
		// data-referenced vectors.
		rvecs := a.DataReferencedVectors(array)
		var wBasis [][]rational.Rat
		if len(rvecs) == 0 {
			// Unconstrained: all of R^d.
			for i := 0; i < d; i++ {
				e := make([]rational.Rat, d)
				e[i] = rational.One
				wBasis = append(wBasis, e)
			}
		} else {
			rm := linalg.FromInts(rvecs)
			wBasis = rm.NullSpace()
		}
		// Image under H_Aᵀ.
		ht := linalg.FromInts(h).Transpose()
		var gVecs [][]rational.Rat
		for _, w := range wBasis {
			gVecs = append(gVecs, ht.MulVec(w))
		}
		ga := space.Span(n, gVecs...)
		gSpace = intersect(gSpace, ga)
		if gSpace.IsZero() {
			return res, nil // no common hyperplane direction
		}
	}
	// Pick a primitive integer ḡ from the intersection.
	basis := gSpace.IntegerBasis()
	if len(basis) == 0 {
		return res, nil
	}
	res.Found = true
	res.G = intlin.Primitive(basis[0])
	// Induced partitioning space Ker(ḡ).
	res.Psi = space.SpanInts(n, res.G).OrthogonalComplement()
	// Count hyperplane blocks.
	seen := map[int64]bool{}
	for _, it := range nest.Iterations() {
		var dot int64
		for k, g := range res.G {
			dot += g * it[k]
		}
		seen[dot] = true
	}
	res.NumBlocks = len(seen)
	return res, nil
}

// intersect returns a ∩ b via orthogonal complements:
// a ∩ b = (a⊥ + b⊥)⊥.
func intersect(a, b *space.Space) *space.Space {
	return a.OrthogonalComplement().Union(b.OrthogonalComplement()).OrthogonalComplement()
}

func isZero(v []int64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// String renders the result.
func (r *Result) String() string {
	switch {
	case !r.Applicable:
		return "hyperplane method not applicable (not a For-all loop)"
	case !r.Found:
		return "no communication-free hyperplane exists"
	default:
		return fmt.Sprintf("hyperplane g=%v, %d blocks", r.G, r.NumBlocks)
	}
}
