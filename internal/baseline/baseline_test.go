package baseline

import (
	"strings"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/partition"
)

// forallLoop is a genuine For-all loop: no loop-carried flow dependence,
// reads and writes to distinct arrays.
//
//	for i = 1 to 4; for j = 1 to 4:
//	  A[i,j] = B[i-1,j-1] + B[i-1,j]
func forallLoop() *loop.Nest {
	id := [][]int64{{1, 0}, {0, 1}}
	return &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
		},
		Body: []*loop.Statement{{
			Write: loop.Ref{Array: "A", H: id, Offset: []int64{0, 0}},
			Reads: []loop.Ref{
				{Array: "B", H: id, Offset: []int64{-1, -1}},
				{Array: "B", H: id, Offset: []int64{-1, 0}},
			},
		}},
	}
}

func TestHyperplaneOnForallLoop(t *testing.T) {
	r, err := Hyperplane(forallLoop())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Applicable || !r.Found {
		t.Fatalf("result = %s", r)
	}
	// B's data-referenced vector is (0,1); w ⟂ (0,1) gives g = (1,0):
	// row hyperplanes, 4 blocks.
	if r.G[0] == 0 {
		t.Errorf("g = %v, want i-direction normal", r.G)
	}
	if r.G[1] != 0 {
		t.Errorf("g = %v, want (±1,0)", r.G)
	}
	if r.NumBlocks != 4 {
		t.Errorf("blocks = %d, want 4", r.NumBlocks)
	}
	// The induced partition must be communication-free (non-duplicate
	// criterion: every element confined to one block).
	p := partition.PartitionIterations(forallLoop(), r.Psi)
	if err := partition.VerifyCommunicationFree(p, false, nil); err != nil {
		t.Errorf("hyperplane partition not communication-free: %v", err)
	}
}

func TestL1NotApplicable(t *testing.T) {
	// Paper: "Because loop L1 is not a For-all loop, Ramanaujam and
	// Sadayappan's method cannot solve it in parallel execution."
	r, err := Hyperplane(loop.L1())
	if err != nil {
		t.Fatal(err)
	}
	if r.Applicable {
		t.Error("L1 reported applicable (it carries a flow dependence)")
	}
	if !strings.Contains(r.String(), "not applicable") {
		t.Errorf("String = %q", r.String())
	}
}

func TestL4L5NotApplicable(t *testing.T) {
	for name, n := range map[string]*loop.Nest{"L4": loop.L4(), "L5": loop.L5(4)} {
		r, err := Hyperplane(n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Applicable {
			t.Errorf("%s reported applicable", name)
		}
	}
}

func TestL2OursBeatsHyperplane(t *testing.T) {
	// L2 has no flow dependence, so it is a For-all loop — but the
	// hyperplane method finds no communication-free hyperplane (array A's
	// data-referenced vectors span the whole data space), while the
	// paper's duplicate strategy exposes all 16 iterations in parallel.
	r, err := Hyperplane(loop.L2())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Applicable {
		t.Fatal("L2 should be applicable (no flow dependence)")
	}
	if r.Found {
		t.Fatalf("hyperplane found for L2: %s", r)
	}
	ours, err := partition.Compute(loop.L2(), partition.Duplicate)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Iter.NumBlocks() != 16 {
		t.Errorf("our blocks = %d", ours.Iter.NumBlocks())
	}
}

func TestForallHigherParallelismThanHyperplane(t *testing.T) {
	// A loop with no cross-iteration sharing at all: our method yields
	// dim(Ψ)=0 (16 blocks); the hyperplane method is capped at one
	// hyperplane family (4 blocks). This is the "dim(Ψ) < n−1 exploits
	// more parallelism" claim of Section III.A.
	id := [][]int64{{1, 0}, {0, 1}}
	n := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
		},
		Body: []*loop.Statement{{
			Write: loop.Ref{Array: "A", H: id, Offset: []int64{0, 0}},
			Reads: []loop.Ref{{Array: "B", H: id, Offset: []int64{0, 0}}},
		}},
	}
	r, err := Hyperplane(n)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Applicable || !r.Found {
		t.Fatalf("hyperplane result = %s", r)
	}
	if r.NumBlocks != 4 {
		t.Errorf("hyperplane blocks = %d, want 4", r.NumBlocks)
	}
	ours, err := partition.Compute(n, partition.NonDuplicate)
	if err != nil {
		t.Fatal(err)
	}
	if ours.Iter.NumBlocks() != 16 {
		t.Errorf("our blocks = %d, want 16", ours.Iter.NumBlocks())
	}
	if ours.Iter.NumBlocks() <= r.NumBlocks {
		t.Error("our method should expose strictly more parallelism here")
	}
}

func TestResultString(t *testing.T) {
	r, _ := Hyperplane(forallLoop())
	if !strings.Contains(r.String(), "hyperplane g=") {
		t.Errorf("String = %q", r.String())
	}
	r, _ = Hyperplane(loop.L2())
	if !strings.Contains(r.String(), "no communication-free hyperplane") {
		t.Errorf("String = %q", r.String())
	}
}
