package redundant

import (
	"fmt"
	"strings"
	"testing"

	"commfree/internal/deps"
	"commfree/internal/loop"
)

func eliminate(t *testing.T, n *loop.Nest) *Result {
	t.Helper()
	a, err := deps.Analyze(n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Eliminate(a)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestL3NonRedundantSets(t *testing.T) {
	r := eliminate(t, loop.L3())
	// Paper: N(S1) = {(i,4) | 1≤i≤4}, N(S2) = all 16 iterations.
	n1 := r.NonRedundant(0)
	if len(n1) != 4 {
		t.Fatalf("N(S1) size = %d, want 4: %v", len(n1), n1)
	}
	for _, it := range n1 {
		if it[1] != 4 {
			t.Errorf("N(S1) contains %v, want j = 4 only", it)
		}
	}
	n2 := r.NonRedundant(1)
	if len(n2) != 16 {
		t.Errorf("N(S2) size = %d, want 16", len(n2))
	}
	if r.NumRedundant() != 12 {
		t.Errorf("redundant count = %d, want 12", r.NumRedundant())
	}
}

func TestL3FalseAndUsefulDeps(t *testing.T) {
	r := eliminate(t, loop.L3())
	// Paper: useful deps are exactly flow (w2,r2) with vector (1,0) and
	// anti (r1,w2) with vector (1,-1); the output (w1,w2), flow (w1,r2),
	// anti (r1,w1), and input (r1,r2) dependences are all false.
	if len(r.UsefulDeps) != 2 {
		for _, d := range r.UsefulDeps {
			t.Logf("useful: %s dist=%v", d, d.Distance)
		}
		t.Fatalf("useful deps = %d, want 2", len(r.UsefulDeps))
	}
	var flowOK, antiOK bool
	for _, d := range r.UsefulDeps {
		if d.Kind == deps.Flow && d.Distance[0] == 1 && d.Distance[1] == 0 {
			flowOK = true
		}
		if d.Kind == deps.Anti && d.Distance[0] == 1 && d.Distance[1] == -1 {
			antiOK = true
		}
	}
	if !flowOK || !antiOK {
		t.Errorf("useful deps wrong: flow(1,0)=%v anti(1,-1)=%v", flowOK, antiOK)
	}
	if len(r.FalseDeps) != 4 {
		for _, d := range r.FalseDeps {
			t.Logf("false: %s", d)
		}
		t.Errorf("false deps = %d, want 4", len(r.FalseDeps))
	}
}

func TestL1NoRedundancy(t *testing.T) {
	// L1 has no redundant computations: every write survives (A written
	// once per element per live chain, B final, C read-only).
	r := eliminate(t, loop.L1())
	if r.NumRedundant() != 0 {
		t.Errorf("L1 redundant = %d, want 0", r.NumRedundant())
	}
	// Every dependence stays useful.
	if len(r.FalseDeps) != 0 {
		t.Errorf("L1 false deps = %v", r.FalseDeps)
	}
}

func TestL5NoRedundancy(t *testing.T) {
	// Matrix multiplication: every C write is read by the next k
	// iteration (accumulation), so nothing is redundant.
	r := eliminate(t, loop.L5(3))
	if r.NumRedundant() != 0 {
		t.Errorf("L5 redundant = %d, want 0", r.NumRedundant())
	}
}

func TestCase1DirectOverwrite(t *testing.T) {
	// B[i,j] := ... then B[i,j-1] := ... : like the S2'/S4' pair in the
	// paper's illustration — B written at (i,j) by S1 is overwritten at
	// (i,j+1) by S2 without any read. All S1 writes except the j=4 column
	// are redundant.
	n := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
		},
		Body: []*loop.Statement{
			{
				Label: "S1",
				Write: loop.Ref{Array: "B", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, 0}},
			},
			{
				Label: "S2",
				Write: loop.Ref{Array: "B", H: [][]int64{{1, 0}, {0, 1}}, Offset: []int64{0, -1}},
			},
		},
	}
	r := eliminate(t, n)
	n1 := r.NonRedundant(0)
	if len(n1) != 4 {
		t.Fatalf("N(S1) = %d, want 4 (only j=4 column)", len(n1))
	}
	for _, it := range n1 {
		if it[1] != 4 {
			t.Errorf("non-redundant S1 at %v", it)
		}
	}
	if len(r.NonRedundant(1)) != 16 {
		t.Errorf("N(S2) = %d, want 16", len(r.NonRedundant(1)))
	}
}

func TestCase2ReadByRedundantOnly(t *testing.T) {
	// Mirror of the paper's four-statement illustration:
	//   S1: A[i,j]     := ...        (read only by S2 at the next iteration)
	//   S2: B[i,j]     := A[i,j-1]   (overwritten unread by S4 → redundant)
	//   S3: A[i-1,j-1] := ...        (overwrites S1's value)
	//   S4: B[i,j-1]   := ...
	// S2(ī) is redundant (Case 1 via S4); then S1's writes are read only
	// by redundant S2 computations before S3 overwrites them (Case 2).
	id := [][]int64{{1, 0}, {0, 1}}
	n := &loop.Nest{
		Levels: []loop.Level{
			{Name: "i", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
			{Name: "j", Lower: loop.ConstAffine(2, 1), Upper: loop.ConstAffine(2, 4)},
		},
		Body: []*loop.Statement{
			{Label: "S1", Write: loop.Ref{Array: "A", H: id, Offset: []int64{0, 0}},
				Reads: []loop.Ref{{Array: "C", H: id, Offset: []int64{0, 0}}}},
			{Label: "S2", Write: loop.Ref{Array: "B", H: id, Offset: []int64{0, 0}},
				Reads: []loop.Ref{{Array: "A", H: id, Offset: []int64{0, -1}}}},
			{Label: "S3", Write: loop.Ref{Array: "A", H: id, Offset: []int64{-1, -1}},
				Reads: []loop.Ref{{Array: "E", H: id, Offset: []int64{0, -1}}}},
			{Label: "S4", Write: loop.Ref{Array: "B", H: id, Offset: []int64{0, -1}}},
		},
	}
	r := eliminate(t, n)
	// The paper's concrete instances: S2'(2,2) redundant, S1'(2,1)
	// redundant.
	if !r.IsRedundant(1, []int64{2, 2}) {
		t.Error("S2(2,2) should be redundant (Case 1)")
	}
	if !r.IsRedundant(0, []int64{2, 1}) {
		t.Error("S1(2,1) should be redundant (Case 2)")
	}
}

func TestValSets(t *testing.T) {
	r := eliminate(t, loop.L3())
	a, _ := deps.Analyze(loop.L3())
	_ = a
	// Val(w1, S1) after elimination = {A[i,4] : i = 1..4}.
	var w1 deps.Access
	for _, d := range r.Analysis.AllDependences() {
		if d.Src.IsWrite && d.Src.Stmt == 0 {
			w1 = d.Src
			break
		}
	}
	if w1.Ref.Array == "" {
		// Build directly: S1's write access.
		w1 = deps.Access{Stmt: 0, IsWrite: true, Ref: loop.L3().Body[0].Write}
	}
	val := r.Val(w1)
	if len(val) != 4 {
		t.Fatalf("Val(w1,S1) size = %d, want 4: %v", len(val), val)
	}
	for i := int64(1); i <= 4; i++ {
		if !val[fmt.Sprint([]int64{i, 4})] {
			t.Errorf("Val(w1,S1) missing A[%d,4]", i)
		}
	}
}

func TestSemanticEquivalenceAfterElimination(t *testing.T) {
	// Removing redundant computations must not change the final array
	// state. Execute L3 with and without the redundant computations.
	nests := map[string]*loop.Nest{"L3": loop.L3(), "L1": loop.L1()}
	for name, n := range nests {
		r := eliminate(t, n)
		full := execute(n, nil)
		pruned := execute(n, r)
		if len(full) != len(pruned) {
			t.Fatalf("%s: state sizes differ: %d vs %d", name, len(full), len(pruned))
		}
		for k, v := range full {
			if pruned[k] != v {
				t.Errorf("%s: element %s = %v pruned vs %v full", name, k, pruned[k], v)
			}
		}
	}
}

// execute runs the nest sequentially; when r is non-nil, redundant
// computations are skipped. Arrays are initialized on demand with a
// deterministic function of the element index.
func execute(n *loop.Nest, r *Result) map[string]float64 {
	state := map[string]float64{}
	read := func(array string, idx []int64) float64 {
		k := array + fmt.Sprint(idx)
		if v, ok := state[k]; ok {
			return v
		}
		// Deterministic initial value.
		var h float64 = 1
		for _, x := range idx {
			h = h*31 + float64(x)
		}
		return h
	}
	for _, it := range n.Iterations() {
		for si, st := range n.Body {
			if r != nil && r.IsRedundant(si, it) {
				continue
			}
			vals := make([]float64, len(st.Reads))
			for ri, rd := range st.Reads {
				vals[ri] = read(rd.Array, rd.Index(it))
			}
			state[st.Write.Array+fmt.Sprint(st.Write.Index(it))] = st.EvalExpr(it, vals)
		}
	}
	return state
}

func TestSummary(t *testing.T) {
	r := eliminate(t, loop.L3())
	s := r.Summary()
	for _, want := range []string{"N(S1): 4", "N(S2): 16", "useful dependences (2)", "false dependences (4)"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
