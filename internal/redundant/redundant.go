// Package redundant implements Section III.C of the paper: detecting and
// eliminating redundant computations, and reclassifying data dependences
// as useful or false afterwards.
//
// A computation S_k(ī) is redundant when the value it writes is
// overwritten by the next write to the same element without having been
// read (Case 1), or having been read only by computations that are
// themselves redundant (Case 2). The paper describes a recursive
// examination; on the finite iteration spaces of the loop model this is a
// monotone fixpoint over the exact event timeline, which this package
// computes directly. Removing the redundant computations can only mark
// more dependences false, never fewer, so the fixpoint is the least one.
package redundant

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/deps"
	"commfree/internal/loop"
)

// event is one access in the execution timeline of a single array element.
type event struct {
	seq     int // global execution order
	stmt    int // statement index
	iter    []int64
	isWrite bool
}

// compKey identifies a computation S_stmt(ī).
type compKey struct {
	stmt int
	iter string
}

func keyOf(stmt int, iter []int64) compKey {
	return compKey{stmt: stmt, iter: fmt.Sprint(iter)}
}

// Result holds the outcome of redundant-computation elimination.
type Result struct {
	Nest     *loop.Nest
	Analysis *deps.Analysis

	redundant map[compKey]bool
	iters     [][]int64

	// UsefulDeps are the dependences that survive (Val sets intersect).
	UsefulDeps []*deps.Dependence
	// FalseDeps are dependences invalidated by redundant-computation
	// removal (Val(a,S) ∩ Val(b,S') = ∅).
	FalseDeps []*deps.Dependence
}

// Eliminate runs the fixpoint on the analysis' nest.
func Eliminate(a *deps.Analysis) (*Result, error) {
	nest := a.Nest
	res := &Result{
		Nest:      nest,
		Analysis:  a,
		redundant: map[compKey]bool{},
		iters:     nest.Iterations(),
	}

	// Build per-element event timelines. Execution order: iterations in
	// lexicographic order; within an iteration, statements in body order;
	// within a statement, reads then the write.
	timeline := map[string][]event{} // "array|elem" -> events
	elemKey := func(array string, elem []int64) string {
		return array + "|" + fmt.Sprint(elem)
	}
	seq := 0
	for _, it := range res.iters {
		for si, st := range nest.Body {
			for _, r := range st.Reads {
				k := elemKey(r.Array, r.Index(it))
				timeline[k] = append(timeline[k], event{seq: seq, stmt: si, iter: it, isWrite: false})
				seq++
			}
			k := elemKey(st.Write.Array, st.Write.Index(it))
			timeline[k] = append(timeline[k], event{seq: seq, stmt: si, iter: it, isWrite: true})
			seq++
		}
	}

	// Monotone fixpoint: mark a computation redundant when its write is
	// followed (on the same element) by another write with no intervening
	// non-redundant reads.
	for changed := true; changed; {
		changed = false
		for _, events := range timeline {
			for i, ev := range events {
				if !ev.isWrite {
					continue
				}
				ck := keyOf(ev.stmt, ev.iter)
				if res.redundant[ck] {
					continue
				}
				// Find the next write; collect reads in between.
				next := -1
				allReadsRedundant := true
				for j := i + 1; j < len(events); j++ {
					if events[j].isWrite {
						next = j
						break
					}
					if !res.redundant[keyOf(events[j].stmt, events[j].iter)] {
						allReadsRedundant = false
					}
				}
				if next < 0 {
					continue // final write: value reaches the output state
				}
				if allReadsRedundant {
					res.redundant[ck] = true
					changed = true
				}
			}
		}
	}

	res.classifyDeps()
	return res, nil
}

// IsRedundant reports whether computation S_stmt(ī) is redundant.
func (r *Result) IsRedundant(stmt int, iter []int64) bool {
	return r.redundant[keyOf(stmt, iter)]
}

// NonRedundant returns N(S_stmt): the iterations at which the statement is
// not redundant, in lexicographic order.
func (r *Result) NonRedundant(stmt int) [][]int64 {
	var out [][]int64
	for _, it := range r.iters {
		if !r.IsRedundant(stmt, it) {
			out = append(out, it)
		}
	}
	return out
}

// NumRedundant counts redundant computations across all statements.
func (r *Result) NumRedundant() int { return len(r.redundant) }

// Val returns the element set Val(ref, S): the data-space points the
// access touches over the non-redundant iterations of its statement.
func (r *Result) Val(acc deps.Access) map[string]bool {
	out := map[string]bool{}
	for _, it := range r.iters {
		if r.IsRedundant(acc.Stmt, it) {
			continue
		}
		out[fmt.Sprint(acc.Ref.Index(it))] = true
	}
	return out
}

// classifyDeps splits the analysis' dependences into useful and false by
// the Val-intersection criterion.
func (r *Result) classifyDeps() {
	for _, d := range r.Analysis.AllDependences() {
		va := r.Val(d.Src)
		vb := r.Val(d.Dst)
		useful := false
		for k := range va {
			if vb[k] {
				useful = true
				break
			}
		}
		if useful {
			r.UsefulDeps = append(r.UsefulDeps, d)
		} else {
			r.FalseDeps = append(r.FalseDeps, d)
		}
	}
}

// UsefulDepsOf returns the useful dependences of one array.
func (r *Result) UsefulDepsOf(array string) []*deps.Dependence {
	var out []*deps.Dependence
	for _, d := range r.UsefulDeps {
		if d.Array == array {
			out = append(out, d)
		}
	}
	return out
}

// Summary renders a human-readable elimination report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "redundant computations: %d of %d\n",
		r.NumRedundant(), len(r.iters)*len(r.Nest.Body))
	for si := range r.Nest.Body {
		n := r.NonRedundant(si)
		fmt.Fprintf(&b, "  N(S%d): %d iterations\n", si+1, len(n))
	}
	var useful, false_ []string
	for _, d := range r.UsefulDeps {
		useful = append(useful, d.String())
	}
	for _, d := range r.FalseDeps {
		false_ = append(false_, d.String())
	}
	sort.Strings(useful)
	sort.Strings(false_)
	fmt.Fprintf(&b, "useful dependences (%d):\n", len(useful))
	for _, s := range useful {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	fmt.Fprintf(&b, "false dependences (%d):\n", len(false_))
	for _, s := range false_ {
		fmt.Fprintf(&b, "  %s\n", s)
	}
	return b.String()
}
