// Package partition implements the paper's core contribution: the four
// communication-free array-partitioning strategies.
//
//   - Theorem 1 (NonDuplicate): Ψ = span(∪ Ψ_A) over the reference spaces
//     of Definition 4.
//   - Theorem 2 (Duplicate): Ψʳ = span(∪ Ψ_Aʳ) over reduced reference
//     spaces — only flow dependences constrain the partition; fully
//     duplicable arrays (no flow dependence, Definition 5) contribute
//     nothing.
//   - Theorems 3 and 4 (Minimal variants): the same constructions after
//     redundant-computation elimination, using only useful dependences.
//
// Partitioning the iteration space by a space Ψ (Definition 2) groups
// iterations whose difference lies in Ψ; the block key is the projection
// onto an integer basis of the orthogonal complement. Data partitions
// (Definition 3) collect every element referenced by a block's iterations.
package partition

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/deps"
	"commfree/internal/linalg"
	"commfree/internal/loop"
	"commfree/internal/obs"
	"commfree/internal/rational"
	"commfree/internal/redundant"
	"commfree/internal/space"
)

// Strategy selects one of the paper's four partitioning schemes.
type Strategy int

const (
	// NonDuplicate is Theorem 1: one copy of every array element.
	NonDuplicate Strategy = iota
	// Duplicate is Theorem 2: elements may be replicated across blocks.
	Duplicate
	// MinimalNonDuplicate is Theorem 3: non-duplicate after eliminating
	// redundant computations (minimal partitioning space).
	MinimalNonDuplicate
	// MinimalDuplicate is Theorem 4: duplicate-data after eliminating
	// redundant computations.
	MinimalDuplicate
	// Selective duplicates only a chosen subset of the arrays (Section
	// IV's L5′ duplicates array B but not A). Use ComputeSelective.
	Selective
	// Mars is the usage-based atomic partitioning after Ferry et al.
	// (Maximal Atomic irRedundant Sets): iteration points whose produced
	// values have identical consumer sets form atomic sets, and blocks
	// are the finest flow-closed grouping of those sets. MARS partitions
	// are computed by package mars (mars.Compute), which emits them
	// through this package's Result shape with Ψ = the zero space and
	// explicitly grouped blocks (PartitionIterationsGrouped).
	Mars
)

// NumStrategies is the number of Strategy values. The compile-time
// guard in strategy_guard_test.go fails when a new value is added
// without growing this constant (and the switches below).
const NumStrategies = 6

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case NonDuplicate:
		return "non-duplicate"
	case Duplicate:
		return "duplicate"
	case MinimalNonDuplicate:
		return "minimal non-duplicate"
	case MinimalDuplicate:
		return "minimal duplicate"
	case Selective:
		return "selective duplicate"
	case Mars:
		return "mars"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Minimal reports whether the strategy requires redundant-computation
// elimination first. Every Strategy value is classified explicitly —
// Mars builds on the eliminated (irredundant) program, so it counts as
// minimal; its Result always carries a non-nil Redundant.
func (s Strategy) Minimal() bool {
	switch s {
	case MinimalNonDuplicate, MinimalDuplicate, Mars:
		return true
	case NonDuplicate, Duplicate, Selective:
		return false
	}
	return false
}

// kernelSpace returns Ker(H_A) over Q.
func kernelSpace(nest *loop.Nest, array string) *space.Space {
	h := nest.ReferenceMatrix(array)
	n := nest.Depth()
	if h == nil {
		return space.Zero(n)
	}
	ns := linalg.FromInts(h).NullSpace()
	return space.Span(n, ns...)
}

// ReferenceSpace computes Ψ_A of Definition 4: the span of Ker(H_A)
// together with one particular solution of H_A·t̄ = r̄ for every
// data-referenced vector r̄ that admits an integer iteration-difference
// solution (conditions (1) and (2)).
func ReferenceSpace(a *deps.Analysis, array string) *space.Space {
	n := a.Nest.Depth()
	sp := kernelSpace(a.Nest, array)
	for _, rel := range a.PairRelations(array) {
		if rel.RationalSolvable && rel.IntegerRealizable {
			sp = sp.Union(space.Span(n, rel.Particular))
		}
	}
	return sp
}

// ReducedReferenceSpace computes Ψ_Aʳ of Section III.B: span(∅) for fully
// duplicable arrays; Ker(H_A) plus the particular solutions of the flow
// dependences for partially duplicable arrays.
func ReducedReferenceSpace(a *deps.Analysis, array string) *space.Space {
	n := a.Nest.Depth()
	if a.FullyDuplicable(array) {
		return space.Zero(n)
	}
	sp := kernelSpace(a.Nest, array)
	for _, d := range a.Dependences(array) {
		if d.Kind != deps.Flow {
			continue
		}
		sp = sp.Union(depSolutionSpace(n, d))
	}
	return sp
}

// depSolutionSpace spans every dependence-distance direction of d: the
// particular solution plus the solution kernel (trivial when H is
// nonsingular, the paper's Section III.C assumption).
func depSolutionSpace(n int, d *deps.Dependence) *space.Space {
	vecs := [][]rational.Rat{space.RatVec(d.Solution.Particular)}
	for _, k := range d.Solution.KernelBasis {
		vecs = append(vecs, space.RatVec(k))
	}
	return space.Span(n, vecs...)
}

// MinimalReferenceSpace computes Ψ_A^min of Section III.C: the span of the
// distance directions of the *useful* data dependences of the array.
//
// Section III.C assumes every H_A is nonsingular, under which the kernel
// is trivial. This implementation handles singular H_A too, and then
// Ker(H_A) must be included: two iterations can touch the same element
// through one reference (kernel reuse) without any recorded dependence —
// e.g. a read-only array — yet the single-copy requirement of the
// non-duplicate strategy still forces them into one block.
func MinimalReferenceSpace(r *redundant.Result, array string) *space.Space {
	sp := kernelSpace(r.Nest, array)
	n := r.Nest.Depth()
	for _, d := range r.UsefulDepsOf(array) {
		sp = sp.Union(depSolutionSpace(n, d))
	}
	return sp
}

// MinimalReducedReferenceSpace computes Ψ_A^minʳ of Section III.C: the
// span of the distance directions of the useful *flow* dependences only.
func MinimalReducedReferenceSpace(r *redundant.Result, array string) *space.Space {
	n := r.Nest.Depth()
	sp := space.Zero(n)
	for _, d := range r.UsefulDepsOf(array) {
		if d.Kind != deps.Flow {
			continue
		}
		sp = sp.Union(depSolutionSpace(n, d))
	}
	return sp
}

// Block is one iteration block B_j of the iteration partition
// (Definition 2).
type Block struct {
	ID         int       // 1-based, in lexicographic key order
	Key        []int64   // Q·ī, constant across the block's iterations
	Iterations [][]int64 // lexicographic order
	Base       []int64   // base point b̄_j: the block's lexicographic minimum
}

// Size returns the number of iterations in the block.
func (b *Block) Size() int { return len(b.Iterations) }

// IterationPartition is P_Ψ(Iⁿ): the iteration space split into blocks.
type IterationPartition struct {
	Nest   *loop.Nest
	Psi    *space.Space
	Q      [][]int64 // primitive integer basis of the orthogonal complement
	Blocks []*Block
	index  map[string]*Block
}

// PartitionIterations applies P_Ψ(Iⁿ) to the nest's iteration space.
func PartitionIterations(nest *loop.Nest, psi *space.Space) *IterationPartition {
	q := psi.OrthogonalComplementIntegerBasis()
	p := &IterationPartition{Nest: nest, Psi: psi, Q: q, index: map[string]*Block{}}
	for _, it := range nest.Iterations() {
		key := projectKey(q, it)
		ks := fmt.Sprint(key)
		b, ok := p.index[ks]
		if !ok {
			b = &Block{Key: key}
			p.index[ks] = b
			p.Blocks = append(p.Blocks, b)
		}
		b.Iterations = append(b.Iterations, it)
	}
	// Deterministic block order: lexicographic by key.
	sort.Slice(p.Blocks, func(i, j int) bool {
		return loop.LexLess(p.Blocks[i].Key, p.Blocks[j].Key)
	})
	for i, b := range p.Blocks {
		b.ID = i + 1
		b.Base = b.Iterations[0] // iterations were appended in lex order
	}
	return p
}

// PartitionIterationsGrouped builds an IterationPartition from explicit
// iteration groups instead of the coset structure of Ψ. It exists for
// usage-based partitions (package mars) whose blocks are value-flow
// closures, not affine cosets. The caller passes psi = the zero space,
// under which Q is an invertible n×n basis and projectKey is injective
// per iteration — so BlockOf keeps working by giving every iteration
// its own index entry pointing at its group's block.
//
// Groups must cover the nest's iteration space exactly once; iterations
// inside each group may be in any order. Block IDs are assigned in
// lexicographic order of the blocks' base points.
func PartitionIterationsGrouped(nest *loop.Nest, psi *space.Space, groups [][][]int64) *IterationPartition {
	q := psi.OrthogonalComplementIntegerBasis()
	p := &IterationPartition{Nest: nest, Psi: psi, Q: q, index: map[string]*Block{}}
	for _, g := range groups {
		its := append([][]int64(nil), g...)
		sort.Slice(its, func(i, j int) bool { return loop.LexLess(its[i], its[j]) })
		b := &Block{Iterations: its, Base: its[0]}
		b.Key = projectKey(q, b.Base)
		p.Blocks = append(p.Blocks, b)
		for _, it := range its {
			p.index[fmt.Sprint(projectKey(q, it))] = b
		}
	}
	sort.Slice(p.Blocks, func(i, j int) bool {
		return loop.LexLess(p.Blocks[i].Base, p.Blocks[j].Base)
	})
	for i, b := range p.Blocks {
		b.ID = i + 1
	}
	return p
}

// projectKey computes Q·ī.
func projectKey(q [][]int64, it []int64) []int64 {
	key := make([]int64, len(q))
	for r, row := range q {
		var s int64
		for c, v := range row {
			s += v * it[c]
		}
		key[r] = s
	}
	return key
}

// BlockOf returns the block containing the iteration (nil if the
// iteration is outside the iteration space).
func (p *IterationPartition) BlockOf(it []int64) *Block {
	for k, lv := range p.Nest.Levels {
		if it[k] < lv.Lower.Eval(it) || it[k] > lv.Upper.Eval(it) {
			return nil
		}
	}
	return p.index[fmt.Sprint(projectKey(p.Q, it))]
}

// NumBlocks returns the number of iteration blocks q.
func (p *IterationPartition) NumBlocks() int { return len(p.Blocks) }

// MaxBlockSize returns the largest block cardinality (the parallel
// execution time in iterations when blocks map 1:1 to processors).
func (p *IterationPartition) MaxBlockSize() int {
	max := 0
	for _, b := range p.Blocks {
		if b.Size() > max {
			max = b.Size()
		}
	}
	return max
}

// DataBlock is B_j^A: the elements of one array referenced by block j.
type DataBlock struct {
	BlockID  int
	Elements [][]int64 // sorted lexicographically, unique
}

// DataPartition is P_Ψ(A) (Definition 3).
type DataPartition struct {
	Array  string
	Blocks []*DataBlock
	// Duplicated reports whether some element appears in more than one
	// block (possible only under the duplicate-data strategies).
	Duplicated bool
	// CopyFactor is (Σ block sizes) / (unique elements); 1.0 means no
	// duplication.
	CopyFactor float64
}

// PartitionData applies P_Ψ(A) for one array, optionally restricted to
// non-redundant computations (minimal strategies).
func PartitionData(p *IterationPartition, array string, red *redundant.Result) *DataPartition {
	dp := &DataPartition{Array: array}
	total := 0
	uniq := map[string]bool{}
	for _, b := range p.Blocks {
		elems := map[string][]int64{}
		for _, it := range b.Iterations {
			for si, st := range p.Nest.Body {
				if red != nil && red.IsRedundant(si, it) {
					continue
				}
				for _, r := range st.Reads {
					if r.Array == array {
						e := r.Index(it)
						elems[fmt.Sprint(e)] = e
					}
				}
				if st.Write.Array == array {
					e := st.Write.Index(it)
					elems[fmt.Sprint(e)] = e
				}
			}
		}
		db := &DataBlock{BlockID: b.ID}
		for _, e := range elems {
			db.Elements = append(db.Elements, e)
		}
		sort.Slice(db.Elements, func(i, j int) bool {
			return loop.LexLess(db.Elements[i], db.Elements[j])
		})
		dp.Blocks = append(dp.Blocks, db)
		total += len(db.Elements)
		for k := range elems {
			uniq[k] = true
		}
	}
	if len(uniq) > 0 {
		dp.CopyFactor = float64(total) / float64(len(uniq))
	}
	dp.Duplicated = total > len(uniq)
	return dp
}

// Result is the complete partitioning of one nest under one strategy.
type Result struct {
	Strategy  Strategy
	Analysis  *deps.Analysis
	Redundant *redundant.Result // non-nil for minimal strategies
	PerArray  map[string]*space.Space
	Psi       *space.Space
	Iter      *IterationPartition
	Data      map[string]*DataPartition
}

// Compute runs the full partitioning pipeline on a validated nest.
func Compute(nest *loop.Nest, strat Strategy) (*Result, error) {
	return ComputeWithTrace(nest, strat, nil, 0)
}

// ComputeWithTrace is Compute with span instrumentation: the analysis
// stages are recorded as "deps", "redundant", and "partition" spans
// under the given parent. A nil trace costs nothing (obs handles are
// inert), so this is the single implementation behind Compute.
func ComputeWithTrace(nest *loop.Nest, strat Strategy, tr *obs.Trace, parent obs.SpanID) (*Result, error) {
	sp := tr.Start(parent, "deps")
	a, err := deps.Analyze(nest)
	sp.End()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Strategy: strat,
		Analysis: a,
		PerArray: map[string]*space.Space{},
		Data:     map[string]*DataPartition{},
	}
	sp = tr.Start(parent, "redundant")
	if strat.Minimal() {
		res.Redundant, err = redundant.Eliminate(a)
		if err != nil {
			sp.End()
			return nil, err
		}
		sp.SetInt("eliminated", int64(res.Redundant.NumRedundant()))
	} else {
		sp.SetInt("skipped", 1)
	}
	sp.End()

	sp = tr.Start(parent, "partition")
	defer sp.End()
	n := nest.Depth()
	psi := space.Zero(n)
	for _, array := range nest.Arrays() {
		var sp *space.Space
		switch strat {
		case NonDuplicate:
			sp = ReferenceSpace(a, array)
		case Duplicate:
			sp = ReducedReferenceSpace(a, array)
		case MinimalNonDuplicate:
			sp = MinimalReferenceSpace(res.Redundant, array)
		case MinimalDuplicate:
			sp = MinimalReducedReferenceSpace(res.Redundant, array)
		case Selective:
			return nil, fmt.Errorf("partition: selective partitions need per-array choices — use ComputeSelective")
		case Mars:
			return nil, fmt.Errorf("partition: MARS partitions are usage-based — use mars.Compute")
		default:
			return nil, fmt.Errorf("partition: unknown strategy %d", int(strat))
		}
		res.PerArray[array] = sp
		psi = psi.Union(sp)
	}
	res.Psi = psi
	res.Iter = PartitionIterations(nest, psi)
	for _, array := range nest.Arrays() {
		res.Data[array] = PartitionData(res.Iter, array, res.Redundant)
	}
	return res, nil
}

// ParallelismDim returns n − dim(Ψ): the dimensionality of the forall
// space (0 means sequential execution).
func (r *Result) ParallelismDim() int {
	return r.Analysis.Nest.Depth() - r.Psi.Dim()
}

// RedundantCopyVolume counts the data-block element copies that exist
// only to feed redundant computations: (block, element) pairs where no
// non-redundant access by the block's iterations touches the element.
// The minimal strategies and MARS build their data partitions with the
// redundancy oracle applied, so their volume is 0 by construction; the
// non-minimal strategies (including Selective) allocate for every
// access and pay for copies whose consumers are all overwritten later.
// The caller supplies the redundancy oracle for the nest (from
// redundant.Eliminate) so results built without one are measurable.
func (r *Result) RedundantCopyVolume(red *redundant.Result) int {
	nest := r.Analysis.Nest
	volume := 0
	for array, dp := range r.Data {
		for bi, db := range dp.Blocks {
			b := r.Iter.Blocks[bi]
			useful := map[string]bool{}
			for _, it := range b.Iterations {
				for si, st := range nest.Body {
					if red.IsRedundant(si, it) {
						continue
					}
					for _, rd := range st.Reads {
						if rd.Array == array {
							useful[fmt.Sprint(rd.Index(it))] = true
						}
					}
					if st.Write.Array == array {
						useful[fmt.Sprint(st.Write.Index(it))] = true
					}
				}
			}
			for _, e := range db.Elements {
				if !useful[fmt.Sprint(e)] {
					volume++
				}
			}
		}
	}
	return volume
}

// ComputeSelective partitions with per-array duplication choices: arrays
// in duplicated use the reduced reference space, the rest the full
// reference space. Section IV's L5′ (duplicate only B) is the motivating
// case: Ψ′ = span({(0,1,0)} ∪ {(0,0,1)}) keeps array A distributed by
// rows while B is replicated everywhere.
func ComputeSelective(nest *loop.Nest, duplicated map[string]bool) (*Result, error) {
	return ComputeSelectiveWithTrace(nest, duplicated, nil, 0)
}

// ComputeSelectiveWithTrace is ComputeSelective with span instrumentation
// (see ComputeWithTrace).
func ComputeSelectiveWithTrace(nest *loop.Nest, duplicated map[string]bool, tr *obs.Trace, parent obs.SpanID) (*Result, error) {
	sp := tr.Start(parent, "deps")
	a, err := deps.Analyze(nest)
	sp.End()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Strategy: Selective,
		Analysis: a,
		PerArray: map[string]*space.Space{},
		Data:     map[string]*DataPartition{},
	}
	sp = tr.Start(parent, "redundant")
	sp.SetInt("skipped", 1)
	sp.End()
	sp = tr.Start(parent, "partition")
	defer sp.End()
	n := nest.Depth()
	psi := space.Zero(n)
	for _, array := range nest.Arrays() {
		var sp *space.Space
		if duplicated[array] {
			sp = ReducedReferenceSpace(a, array)
		} else {
			sp = ReferenceSpace(a, array)
		}
		res.PerArray[array] = sp
		psi = psi.Union(sp)
	}
	res.Psi = psi
	res.Iter = PartitionIterations(nest, psi)
	for _, array := range nest.Arrays() {
		res.Data[array] = PartitionData(res.Iter, array, nil)
	}
	return res, nil
}

// AllowsDuplication reports whether the strategy may replicate data.
// Every Strategy value is classified explicitly. Mars allows it: its
// blocks group iterations by value flow, so distinct blocks may read
// (and, across overwrite generations, write) copies of one element —
// the executors must therefore use private per-block copies with
// last-writer commit, exactly like the duplicate theorems.
func (r *Result) AllowsDuplication() bool {
	switch r.Strategy {
	case Duplicate, MinimalDuplicate, Selective, Mars:
		return true
	case NonDuplicate, MinimalNonDuplicate:
		return false
	}
	return false
}

// Verify exhaustively checks communication-freeness of the result on the
// finite iteration space and returns a descriptive error on violation.
func (r *Result) Verify() error {
	return VerifyCommunicationFree(r.Iter, r.AllowsDuplication(), r.Redundant)
}

// accessEvent is one array access in global sequential order.
type accessEvent struct {
	order   int
	isWrite bool
	block   int
	stmt    int
	iter    []int64
}

// VerifyCommunicationFree checks the partition against the nest's exact
// execution trace.
//
// Under the non-duplicate strategies (dupOK = false), every element must
// be touched by exactly one block. Under the duplicate strategies
// (dupOK = true), every read must see its most recent writer (if any) in
// its own block — the flow-dependence condition of Theorem 2. When red is
// non-nil, redundant computations are excluded from the trace (Theorems 3
// and 4 guarantee communication-freeness only for the pruned program).
func VerifyCommunicationFree(p *IterationPartition, dupOK bool, red *redundant.Result) error {
	events := map[string][]accessEvent{} // array|elem → ordered accesses
	order := 0
	for _, it := range p.Nest.Iterations() {
		b := p.BlockOf(it)
		if b == nil {
			return fmt.Errorf("partition: iteration %v not covered by any block", it)
		}
		for si, st := range p.Nest.Body {
			if red != nil && red.IsRedundant(si, it) {
				continue
			}
			for _, rd := range st.Reads {
				k := rd.Array + "|" + fmt.Sprint(rd.Index(it))
				events[k] = append(events[k], accessEvent{order: order, block: b.ID, stmt: si, iter: it})
				order++
			}
			k := st.Write.Array + "|" + fmt.Sprint(st.Write.Index(it))
			events[k] = append(events[k], accessEvent{order: order, isWrite: true, block: b.ID, stmt: si, iter: it})
			order++
		}
	}
	for key, evs := range events {
		if !dupOK {
			for _, e := range evs[1:] {
				if e.block != evs[0].block {
					return fmt.Errorf("partition: element %s accessed by blocks %d and %d (non-duplicate strategy)",
						key, evs[0].block, e.block)
				}
			}
			continue
		}
		lastWrite := -1
		for i, e := range evs {
			if e.isWrite {
				lastWrite = i
				continue
			}
			if lastWrite >= 0 && evs[lastWrite].block != e.block {
				return fmt.Errorf("partition: flow dependence on %s crosses blocks %d → %d (write S%d%v, read S%d%v)",
					key, evs[lastWrite].block, e.block,
					evs[lastWrite].stmt+1, evs[lastWrite].iter, e.stmt+1, e.iter)
			}
		}
	}
	return nil
}

// Summary renders a report of the partitioning result.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "strategy: %s\n", r.Strategy)
	arrays := r.Analysis.Nest.Arrays()
	for _, a := range arrays {
		fmt.Fprintf(&b, "  Ψ_%s = %s\n", a, r.PerArray[a])
	}
	fmt.Fprintf(&b, "partitioning space Ψ = %s (dim %d)\n", r.Psi, r.Psi.Dim())
	fmt.Fprintf(&b, "parallelism: %d-dimensional forall space, %d blocks (max block %d iterations)\n",
		r.ParallelismDim(), r.Iter.NumBlocks(), r.Iter.MaxBlockSize())
	for _, a := range arrays {
		dp := r.Data[a]
		fmt.Fprintf(&b, "  array %s: duplicated=%v copy-factor=%.2f\n", a, dp.Duplicated, dp.CopyFactor)
	}
	return b.String()
}
