package partition_test

import (
	"fmt"

	"commfree/internal/loop"
	"commfree/internal/partition"
)

// ExampleCompute reproduces the paper's Example 1 analysis: loop L1
// partitions along the flow-dependence direction (1,1) into seven
// communication-free blocks.
func ExampleCompute() {
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("Ψ_A =", res.PerArray["A"])
	fmt.Println("Ψ_B =", res.PerArray["B"])
	fmt.Println("Ψ =", res.Psi)
	fmt.Println("blocks:", res.Iter.NumBlocks())
	fmt.Println("communication-free:", res.Verify() == nil)
	// Output:
	// Ψ_A = span{(1,1)}
	// Ψ_B = span{}
	// Ψ = span{(1,1)}
	// blocks: 7
	// communication-free: true
}

// ExampleCompute_duplicate shows Theorem 2 on loop L2: both arrays are
// fully duplicable, so the reduced partitioning space is trivial and all
// 16 iterations run in parallel.
func ExampleCompute_duplicate() {
	res, _ := partition.Compute(loop.L2(), partition.Duplicate)
	fmt.Println("Ψʳ =", res.Psi)
	fmt.Println("blocks:", res.Iter.NumBlocks())
	fmt.Println("A duplicated:", res.Data["A"].Duplicated)
	// Output:
	// Ψʳ = span{}
	// blocks: 16
	// A duplicated: true
}

// ExampleCompute_minimal shows Theorem 4 on loop L3: after eliminating
// the redundant computations, only the flow dependence (1,0) remains and
// the loop splits into four column blocks.
func ExampleCompute_minimal() {
	res, _ := partition.Compute(loop.L3(), partition.MinimalDuplicate)
	fmt.Println("Ψ^minʳ =", res.Psi)
	fmt.Println("blocks:", res.Iter.NumBlocks())
	fmt.Println("redundant computations:", res.Redundant.NumRedundant())
	// Output:
	// Ψ^minʳ = span{(1,0)}
	// blocks: 4
	// redundant computations: 12
}
