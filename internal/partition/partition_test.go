package partition

import (
	"strings"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/space"
)

func compute(t *testing.T, n *loop.Nest, s Strategy) *Result {
	t.Helper()
	r, err := Compute(n, s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestL1NonDuplicate(t *testing.T) {
	r := compute(t, loop.L1(), NonDuplicate)
	// Paper: Ψ_A = Ψ_C = span{(1,1)}, Ψ_B = {0}, Ψ = span{(1,1)}.
	want := space.SpanInts(2, []int64{1, 1})
	if !r.PerArray["A"].Equal(want) {
		t.Errorf("Ψ_A = %s, want span{(1,1)}", r.PerArray["A"])
	}
	if !r.PerArray["C"].Equal(want) {
		t.Errorf("Ψ_C = %s, want span{(1,1)}", r.PerArray["C"])
	}
	if !r.PerArray["B"].IsZero() {
		t.Errorf("Ψ_B = %s, want span{}", r.PerArray["B"])
	}
	if !r.Psi.Equal(want) {
		t.Errorf("Ψ = %s", r.Psi)
	}
	// Fig. 3: seven iteration blocks along (1,1), sizes 1,2,3,4,3,2,1.
	if r.Iter.NumBlocks() != 7 {
		t.Fatalf("blocks = %d, want 7", r.Iter.NumBlocks())
	}
	sizes := make([]int, 0, 7)
	for _, b := range r.Iter.Blocks {
		sizes = append(sizes, b.Size())
	}
	wantSizes := []int{1, 2, 3, 4, 3, 2, 1}
	for i := range wantSizes {
		if sizes[i] != wantSizes[i] {
			t.Errorf("block sizes = %v, want %v", sizes, wantSizes)
			break
		}
	}
	// Base point of the middle block is its lexicographic minimum; the
	// paper marks b̄₅ = (2,1) for B₅ = {(2,1),(3,2),(4,3)}.
	var blk *Block
	for _, b := range r.Iter.Blocks {
		if b.Size() == 3 && b.Iterations[0][0] == 2 && b.Iterations[0][1] == 1 {
			blk = b
		}
	}
	if blk == nil {
		t.Fatal("block B₅ {(2,1),(3,2),(4,3)} not found")
	}
	if blk.Base[0] != 2 || blk.Base[1] != 1 {
		t.Errorf("base point = %v, want (2,1)", blk.Base)
	}
	// Fig. 2: each array splits into 7 data blocks, no duplication.
	for _, a := range []string{"A", "B", "C"} {
		dp := r.Data[a]
		if len(dp.Blocks) != 7 {
			t.Errorf("array %s: %d data blocks", a, len(dp.Blocks))
		}
		if dp.Duplicated {
			t.Errorf("array %s duplicated under non-duplicate strategy", a)
		}
	}
	if r.ParallelismDim() != 1 {
		t.Errorf("parallelism dim = %d", r.ParallelismDim())
	}
	if err := r.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestL1DuplicateSameAsNonDuplicate(t *testing.T) {
	// Paper: for L1 the duplicate strategy obtains the same results.
	r := compute(t, loop.L1(), Duplicate)
	if !r.Psi.Equal(space.SpanInts(2, []int64{1, 1})) {
		t.Errorf("Ψʳ = %s, want span{(1,1)}", r.Psi)
	}
	if r.Iter.NumBlocks() != 7 {
		t.Errorf("blocks = %d", r.Iter.NumBlocks())
	}
	// Ψ_Bʳ = Ψ_Cʳ = span{} (fully duplicable), Ψ_Aʳ = span{(1,1)}.
	if !r.PerArray["B"].IsZero() || !r.PerArray["C"].IsZero() {
		t.Error("B, C should have empty reduced reference spaces")
	}
	for _, a := range []string{"A", "B", "C"} {
		if r.Data[a].Duplicated {
			t.Errorf("array %s needlessly duplicated", a)
		}
	}
	if err := r.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestL2NonDuplicateSequential(t *testing.T) {
	r := compute(t, loop.L2(), NonDuplicate)
	// Paper: Ψ_A = span{(1,-1),(1/2,1/2)} = Q², so L2 runs sequentially.
	if !r.PerArray["A"].IsFull() {
		t.Errorf("Ψ_A = %s, want full", r.PerArray["A"])
	}
	if !r.PerArray["B"].IsZero() {
		t.Errorf("Ψ_B = %s, want span{}", r.PerArray["B"])
	}
	if !r.Psi.IsFull() || r.Iter.NumBlocks() != 1 {
		t.Errorf("Ψ = %s, blocks = %d (want sequential)", r.Psi, r.Iter.NumBlocks())
	}
	if r.ParallelismDim() != 0 {
		t.Errorf("parallelism = %d", r.ParallelismDim())
	}
	if err := r.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestL2DuplicateFullyParallel(t *testing.T) {
	r := compute(t, loop.L2(), Duplicate)
	// Paper: both arrays fully duplicable → Ψʳ = span(∅), 16 singleton
	// blocks (Fig. 5).
	if !r.Psi.IsZero() {
		t.Fatalf("Ψʳ = %s, want span{}", r.Psi)
	}
	if r.Iter.NumBlocks() != 16 {
		t.Errorf("blocks = %d, want 16", r.Iter.NumBlocks())
	}
	for _, b := range r.Iter.Blocks {
		if b.Size() != 1 {
			t.Errorf("block %d size = %d, want 1", b.ID, b.Size())
		}
	}
	// Array A must actually be duplicated (anti-diagonal elements are
	// written by several iterations, Fig. 4).
	if !r.Data["A"].Duplicated {
		t.Error("A should be duplicated")
	}
	if err := r.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	if r.ParallelismDim() != 2 {
		t.Errorf("parallelism = %d", r.ParallelismDim())
	}
}

func TestL3Strategies(t *testing.T) {
	// Non-minimal: both strategies sequential (Ψ = Ψʳ = Q²).
	for _, s := range []Strategy{NonDuplicate, Duplicate} {
		r := compute(t, loop.L3(), s)
		if !r.Psi.IsFull() {
			t.Errorf("%s: Ψ = %s, want full (sequential)", s, r.Psi)
		}
		if err := r.Verify(); err != nil {
			t.Errorf("%s: verify: %v", s, err)
		}
	}
	// Theorem 3: minimal non-duplicate Ψ = span{(1,0),(1,-1)} = Q².
	r := compute(t, loop.L3(), MinimalNonDuplicate)
	if !r.Psi.IsFull() {
		t.Errorf("minimal Ψ = %s, want full", r.Psi)
	}
	if err := r.Verify(); err != nil {
		t.Errorf("minimal non-dup verify: %v", err)
	}
	// Theorem 4: minimal duplicate Ψ = span{(1,0)} → 4 column blocks
	// (Figs. 8, 9).
	r = compute(t, loop.L3(), MinimalDuplicate)
	if !r.Psi.Equal(space.SpanInts(2, []int64{1, 0})) {
		t.Fatalf("minimal-dup Ψ = %s, want span{(1,0)}", r.Psi)
	}
	if r.Iter.NumBlocks() != 4 {
		t.Errorf("blocks = %d, want 4", r.Iter.NumBlocks())
	}
	for _, b := range r.Iter.Blocks {
		if b.Size() != 4 {
			t.Errorf("block %d size = %d, want 4", b.ID, b.Size())
		}
		// All iterations of a block share j.
		for _, it := range b.Iterations {
			if it[1] != b.Iterations[0][1] {
				t.Errorf("block %d mixes columns: %v", b.ID, b.Iterations)
			}
		}
	}
	if err := r.Verify(); err != nil {
		t.Errorf("minimal-dup verify: %v", err)
	}
}

func TestL4AllStrategiesAgree(t *testing.T) {
	// Paper: the minimal partitioning space of L4 is span{(1,-1,1)} under
	// any of Theorems 1-4 (no duplication helps, no redundancy exists).
	want := space.SpanInts(3, []int64{1, -1, 1})
	for _, s := range []Strategy{NonDuplicate, Duplicate, MinimalNonDuplicate, MinimalDuplicate} {
		r := compute(t, loop.L4(), s)
		if !r.Psi.Equal(want) {
			t.Errorf("%s: Ψ = %s, want span{(1,-1,1)}", s, r.Psi)
		}
		if err := r.Verify(); err != nil {
			t.Errorf("%s: verify: %v", s, err)
		}
	}
	// 37 blocks of the 4×4×4 space along (1,-1,1).
	r := compute(t, loop.L4(), NonDuplicate)
	if r.Iter.NumBlocks() != 37 {
		t.Errorf("blocks = %d, want 37", r.Iter.NumBlocks())
	}
	total := 0
	for _, b := range r.Iter.Blocks {
		total += b.Size()
	}
	if total != 64 {
		t.Errorf("block sizes sum to %d, want 64", total)
	}
}

func TestL5Strategies(t *testing.T) {
	// Paper: Ψ_A = span{(0,1,0)}, Ψ_B = span{(1,0,0)}, Ψ_C = span{(0,0,1)};
	// non-duplicate → Q³ (sequential).
	r := compute(t, loop.L5(4), NonDuplicate)
	if !r.PerArray["A"].Equal(space.SpanInts(3, []int64{0, 1, 0})) {
		t.Errorf("Ψ_A = %s", r.PerArray["A"])
	}
	if !r.PerArray["B"].Equal(space.SpanInts(3, []int64{1, 0, 0})) {
		t.Errorf("Ψ_B = %s", r.PerArray["B"])
	}
	if !r.PerArray["C"].Equal(space.SpanInts(3, []int64{0, 0, 1})) {
		t.Errorf("Ψ_C = %s", r.PerArray["C"])
	}
	if !r.Psi.IsFull() {
		t.Errorf("Ψ = %s, want Q³", r.Psi)
	}
	if err := r.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}

	// Duplicate (L5″): Ψ″ = span{(0,0,1)} → M² = 16 blocks.
	r = compute(t, loop.L5(4), Duplicate)
	if !r.Psi.Equal(space.SpanInts(3, []int64{0, 0, 1})) {
		t.Fatalf("Ψ″ = %s, want span{(0,0,1)}", r.Psi)
	}
	if r.Iter.NumBlocks() != 16 {
		t.Errorf("blocks = %d, want 16", r.Iter.NumBlocks())
	}
	// A and B get duplicated (each row/column replicated across blocks),
	// C does not.
	if !r.Data["A"].Duplicated || !r.Data["B"].Duplicated {
		t.Error("A and B should be duplicated under L5″")
	}
	if r.Data["C"].Duplicated {
		t.Error("C should not be duplicated")
	}
	if err := r.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestL5SelectiveDuplication(t *testing.T) {
	// Section IV's L5′: duplicate only B (A stays non-duplicated) →
	// Ψ′ = span{(0,1,0),(0,0,1)} → M row blocks.
	r, err := ComputeSelective(loop.L5(4), map[string]bool{"B": true, "C": true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Psi.Equal(space.SpanInts(3, []int64{0, 1, 0}, []int64{0, 0, 1})) {
		t.Fatalf("Ψ′ = %s, want span{(0,1,0),(0,0,1)}", r.Psi)
	}
	if r.Iter.NumBlocks() != 4 {
		t.Errorf("blocks = %d, want 4 (one per row)", r.Iter.NumBlocks())
	}
	if r.Data["A"].Duplicated {
		t.Error("A must not be duplicated under L5′")
	}
	if !r.Data["B"].Duplicated {
		t.Error("B must be duplicated under L5′ (whole array per processor)")
	}
	// Every block reads the whole of B: copy factor = number of blocks.
	if got := r.Data["B"].CopyFactor; got != 4.0 {
		t.Errorf("B copy factor = %v, want 4", got)
	}
	if err := r.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestBlockLookupConsistency(t *testing.T) {
	r := compute(t, loop.L1(), NonDuplicate)
	for _, b := range r.Iter.Blocks {
		for _, it := range b.Iterations {
			if got := r.Iter.BlockOf(it); got != b {
				t.Errorf("BlockOf(%v) = block %v, want %d", it, got, b.ID)
			}
		}
	}
	if r.Iter.BlockOf([]int64{99, 99}) != nil {
		t.Error("out-of-space iteration found a block")
	}
}

func TestIterationPartitionFullPsi(t *testing.T) {
	// dim(Ψ) = n → exactly one block (the note after Definition 2).
	p := PartitionIterations(loop.L1(), space.Full(2))
	if p.NumBlocks() != 1 || p.Blocks[0].Size() != 16 {
		t.Errorf("blocks = %d, size = %d", p.NumBlocks(), p.Blocks[0].Size())
	}
	// dim(Ψ) = 0 → one iteration per block.
	p = PartitionIterations(loop.L1(), space.Zero(2))
	if p.NumBlocks() != 16 {
		t.Errorf("blocks = %d, want 16", p.NumBlocks())
	}
}

func TestVerifyCatchesBadPartition(t *testing.T) {
	// Partition L1 along (1,0) — NOT communication-free: the flow
	// dependence (1,1) crosses blocks.
	p := PartitionIterations(loop.L1(), space.SpanInts(2, []int64{1, 0}))
	if err := VerifyCommunicationFree(p, false, nil); err == nil {
		t.Error("bad partition passed non-duplicate verification")
	}
	if err := VerifyCommunicationFree(p, true, nil); err == nil {
		t.Error("bad partition passed duplicate verification (flow crosses)")
	}
}

func TestMaxBlockSize(t *testing.T) {
	r := compute(t, loop.L1(), NonDuplicate)
	if got := r.Iter.MaxBlockSize(); got != 4 {
		t.Errorf("max block = %d, want 4", got)
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		NonDuplicate:        "non-duplicate",
		Duplicate:           "duplicate",
		MinimalNonDuplicate: "minimal non-duplicate",
		MinimalDuplicate:    "minimal duplicate",
		Selective:           "selective duplicate",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestSummaryContents(t *testing.T) {
	r := compute(t, loop.L1(), NonDuplicate)
	s := r.Summary()
	for _, want := range []string{"non-duplicate", "Ψ_A", "span{(1,1)}", "7 blocks"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
