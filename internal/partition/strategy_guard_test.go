package partition

import (
	"encoding/json"
	"testing"
)

// Compile-time exhaustiveness guard: adding (or removing) a Strategy
// value without updating NumStrategies makes one of these constants
// negative, which fails to compile. The tests below then enumerate
// [0, NumStrategies) and fail at runtime if any classification switch
// was left without an explicit case for the new value.
const (
	_ = uint(NumStrategies - (int(Mars) + 1)) // NumStrategies < last value + 1 → compile error
	_ = uint((int(Mars) + 1) - NumStrategies) // NumStrategies > last value + 1 → compile error
)

// TestStrategyRoundTrip is the table-driven satellite test: every
// Strategy value must have a distinct paper name, survive a JSON
// round-trip unchanged, and be explicitly classified by Minimal() —
// a fallthrough to the default String() spelling means a switch
// missed the value.
func TestStrategyRoundTrip(t *testing.T) {
	tests := []struct {
		strat   Strategy
		name    string
		minimal bool
	}{
		{NonDuplicate, "non-duplicate", false},
		{Duplicate, "duplicate", false},
		{MinimalNonDuplicate, "minimal non-duplicate", true},
		{MinimalDuplicate, "minimal duplicate", true},
		{Selective, "selective duplicate", false},
		{Mars, "mars", true},
	}
	if len(tests) != NumStrategies {
		t.Fatalf("table covers %d strategies, enum has %d — add the new value here", len(tests), NumStrategies)
	}
	seen := map[string]bool{}
	for _, tc := range tests {
		if got := tc.strat.String(); got != tc.name {
			t.Errorf("%d.String() = %q, want %q", int(tc.strat), got, tc.name)
		}
		if seen[tc.name] {
			t.Errorf("duplicate strategy name %q", tc.name)
		}
		seen[tc.name] = true
		if got := tc.strat.Minimal(); got != tc.minimal {
			t.Errorf("%s.Minimal() = %v, want %v", tc.strat, got, tc.minimal)
		}

		data, err := json.Marshal(tc.strat)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		var back Strategy
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", tc.name, data, err)
		}
		if back != tc.strat {
			t.Errorf("%s: JSON round-trip gave %s", tc.name, back)
		}
	}

	// The enum has no gaps: every value in [0, NumStrategies) carries a
	// real name (the default String() spelling marks an unswitched one).
	for s := Strategy(0); int(s) < NumStrategies; s++ {
		if got := s.String(); len(got) >= len("Strategy(") && got[:len("Strategy(")] == "Strategy(" {
			t.Errorf("Strategy(%d) has no explicit String case", int(s))
		}
	}
}

// TestStrategyResultClassification pins the Result-level classification
// switches (AllowsDuplication) for every enum value, so a new strategy
// cannot silently inherit the zero-value behavior.
func TestStrategyResultClassification(t *testing.T) {
	want := map[Strategy]bool{
		NonDuplicate:        false,
		Duplicate:           true,
		MinimalNonDuplicate: false,
		MinimalDuplicate:    true,
		Selective:           true,
		Mars:                true,
	}
	if len(want) != NumStrategies {
		t.Fatalf("table covers %d strategies, enum has %d", len(want), NumStrategies)
	}
	for s, dup := range want {
		r := &Result{Strategy: s}
		if got := r.AllowsDuplication(); got != dup {
			t.Errorf("%s.AllowsDuplication() = %v, want %v", s, got, dup)
		}
	}
}
