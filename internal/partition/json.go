package partition

// JSON-stable views of partitioning results, for serving plans over the
// wire: plain slices, maps, and strings with fixed field names — no
// rationals, no closures, no back-pointers into the analysis.

import (
	"encoding/json"
	"fmt"
)

// MarshalJSON renders a strategy by its paper name ("duplicate", …).
func (s Strategy) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a strategy from its paper name.
func (s *Strategy) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for _, cand := range []Strategy{
		NonDuplicate, Duplicate, MinimalNonDuplicate, MinimalDuplicate, Selective, Mars,
	} {
		if cand.String() == name {
			*s = cand
			return nil
		}
	}
	return fmt.Errorf("partition: unknown strategy %q", name)
}

// ArrayInfo is the wire form of one array's data partition.
type ArrayInfo struct {
	// Basis is the integer basis of the array's reference space Ψ_A.
	Basis [][]int64 `json:"basis"`
	// Duplicated reports whether any element is replicated across blocks.
	Duplicated bool `json:"duplicated"`
	// CopyFactor is total block elements / unique elements (1.0 = none).
	CopyFactor float64 `json:"copy_factor"`
	// Blocks is the number of data blocks.
	Blocks int `json:"blocks"`
}

// Info is the wire form of a partitioning result.
type Info struct {
	// Strategy is the paper-facing strategy name.
	Strategy string `json:"strategy"`
	// PsiBasis is the integer basis of the partitioning space Ψ, one
	// row per basis vector (empty for the zero space).
	PsiBasis [][]int64 `json:"psi_basis"`
	// PsiDim is dim Ψ; ParallelismDim = n − dim Ψ is the dimension of
	// the communication-free forall space.
	PsiDim         int `json:"psi_dim"`
	ParallelismDim int `json:"parallelism_dim"`
	// NumBlocks and MaxBlockSize describe the iteration partition.
	NumBlocks    int `json:"num_blocks"`
	MaxBlockSize int `json:"max_block_size"`
	// EliminatedIterations counts redundant computations removed by the
	// minimal strategies (0 otherwise).
	EliminatedIterations int `json:"eliminated_iterations,omitempty"`
	// Arrays maps array name → its data-partition info.
	Arrays map[string]ArrayInfo `json:"arrays"`
}

// Info builds the JSON-stable view of the result.
func (r *Result) Info() Info {
	info := Info{
		Strategy:       r.Strategy.String(),
		PsiBasis:       basisInts(r.Psi.IntegerBasis()),
		PsiDim:         r.Psi.Dim(),
		ParallelismDim: r.ParallelismDim(),
		NumBlocks:      r.Iter.NumBlocks(),
		MaxBlockSize:   r.Iter.MaxBlockSize(),
		Arrays:         map[string]ArrayInfo{},
	}
	if r.Redundant != nil {
		info.EliminatedIterations = r.Redundant.NumRedundant()
	}
	for name, sp := range r.PerArray {
		ai := ArrayInfo{Basis: basisInts(sp.IntegerBasis())}
		if dp := r.Data[name]; dp != nil {
			ai.Duplicated = dp.Duplicated
			ai.CopyFactor = dp.CopyFactor
			ai.Blocks = len(dp.Blocks)
		}
		info.Arrays[name] = ai
	}
	return info
}

// basisInts normalizes a nil basis to an empty slice so the JSON is
// always an array, never null.
func basisInts(rows [][]int64) [][]int64 {
	if rows == nil {
		return [][]int64{}
	}
	return rows
}
