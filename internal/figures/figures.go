// Package figures regenerates the paper's figures as textual renderings:
// data spaces with their data-referenced vectors (Fig. 1), data and
// iteration partitions of loops L1–L3 (Figs. 2–5, 8, 9), and the
// processor assignment of the transformed loop L4′ (Fig. 10).
//
// Each figure is produced from the same analysis pipeline the library
// exposes — nothing is hard-coded beyond the loop definitions — so the
// renderings double as regression fixtures for the partitioner.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"commfree/internal/assign"
	"commfree/internal/deps"
	"commfree/internal/loop"
	"commfree/internal/partition"
	"commfree/internal/redundant"
	"commfree/internal/space"
	"commfree/internal/transform"
)

// Render returns the named figure (1–10).
func Render(n int) (string, error) {
	switch n {
	case 1:
		return Fig1(), nil
	case 2:
		return Fig2(), nil
	case 3:
		return Fig3(), nil
	case 4:
		return Fig4(), nil
	case 5:
		return Fig5(), nil
	case 6:
		return Fig6(), nil
	case 7:
		return Fig7(), nil
	case 8:
		return Fig8(), nil
	case 9:
		return Fig9(), nil
	case 10:
		return Fig10(), nil
	}
	return "", fmt.Errorf("figures: no figure %d", n)
}

// elementsOf collects the data-space points of one array touched by the
// loop, optionally restricted to non-redundant computations.
func elementsOf(nest *loop.Nest, array string, red *redundant.Result) map[string][]int64 {
	out := map[string][]int64{}
	for _, it := range nest.Iterations() {
		for si, st := range nest.Body {
			if red != nil && red.IsRedundant(si, it) {
				continue
			}
			for _, r := range st.Reads {
				if r.Array == array {
					e := r.Index(it)
					out[fmt.Sprint(e)] = e
				}
			}
			if st.Write.Array == array {
				e := st.Write.Index(it)
				out[fmt.Sprint(e)] = e
			}
		}
	}
	return out
}

// bounds returns the bounding box of a set of 2-D points.
func bounds(elems map[string][]int64) (lo, hi [2]int64) {
	first := true
	for _, e := range elems {
		if first {
			lo = [2]int64{e[0], e[1]}
			hi = lo
			first = false
			continue
		}
		for d := 0; d < 2; d++ {
			if e[d] < lo[d] {
				lo[d] = e[d]
			}
			if e[d] > hi[d] {
				hi[d] = e[d]
			}
		}
	}
	return lo, hi
}

// dataSpaceGrid renders the 2-D data space of one array: '*' for used
// elements, '·' for unused grid points inside the bounding box.
func dataSpaceGrid(title string, elems map[string][]int64) string {
	var b strings.Builder
	lo, hi := bounds(elems)
	fmt.Fprintf(&b, "%s  [%d:%d, %d:%d]\n", title, lo[0], hi[0], lo[1], hi[1])
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			if _, ok := elems[fmt.Sprint([]int64{x, y})]; ok {
				b.WriteString(" *")
			} else {
				b.WriteString(" ·")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig1 shows the data spaces of arrays A, B, C of loop L1 with their
// data-referenced vectors (Definition 1).
func Fig1() string {
	nest := loop.L1()
	a, err := deps.Analyze(nest)
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	b.WriteString("Fig. 1 — data spaces and data-referenced vectors, loop L1\n\n")
	for _, array := range nest.Arrays() {
		elems := elementsOf(nest, array, nil)
		b.WriteString(dataSpaceGrid("array "+array, elems))
		rv := a.DataReferencedVectors(array)
		if len(rv) == 0 {
			b.WriteString("data-referenced vectors: none (single reference)\n\n")
			continue
		}
		var parts []string
		for _, r := range rv {
			parts = append(parts, fmt.Sprintf("(%d,%d)", r[0], r[1]))
		}
		fmt.Fprintf(&b, "data-referenced vectors: %s\n\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// dataBlocksGrid renders a data partition: each used element labeled with
// its block ID (or the copy count when duplicated).
func dataBlocksGrid(title string, dp *partition.DataPartition) string {
	owners := map[string][]int{}
	pts := map[string][]int64{}
	for _, blk := range dp.Blocks {
		for _, e := range blk.Elements {
			k := fmt.Sprint(e)
			owners[k] = append(owners[k], blk.BlockID)
			pts[k] = e
		}
	}
	var b strings.Builder
	lo, hi := bounds(pts)
	fmt.Fprintf(&b, "%s  [%d:%d, %d:%d]  (cells show owning block, '+n' = n copies)\n",
		title, lo[0], hi[0], lo[1], hi[1])
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			k := fmt.Sprint([]int64{x, y})
			own := owners[k]
			switch {
			case len(own) == 0:
				b.WriteString("   ·")
			case len(own) == 1:
				fmt.Fprintf(&b, " %3d", own[0])
			default:
				fmt.Fprintf(&b, "  +%d", len(own))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig2 shows the data blocks of arrays A, B, C of loop L1 under the
// non-duplicate partition (seven blocks per array).
func Fig2() string {
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	b.WriteString("Fig. 2 — data partition of loop L1 along (1,1), 7 blocks per array\n\n")
	for _, array := range res.Analysis.Nest.Arrays() {
		b.WriteString(dataBlocksGrid("array "+array, res.Data[array]))
		b.WriteString("\n")
	}
	return b.String()
}

// iterationGrid renders a 2-D iteration partition: cells show block IDs,
// base points are marked with '*'.
func iterationGrid(p *partition.IterationPartition) string {
	base := map[string]bool{}
	for _, blk := range p.Blocks {
		base[fmt.Sprint(blk.Base)] = true
	}
	lo, hi, ok := p.Nest.ConstBounds()
	if !ok {
		return "(non-constant bounds)"
	}
	var b strings.Builder
	b.WriteString("(cells show block ID; '*' marks the block's base point)\n")
	for i := lo[0]; i <= hi[0]; i++ {
		for j := lo[1]; j <= hi[1]; j++ {
			it := []int64{i, j}
			blk := p.BlockOf(it)
			mark := " "
			if base[fmt.Sprint(it)] {
				mark = "*"
			}
			fmt.Fprintf(&b, " %2d%s", blk.ID, mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig3 shows the iteration partition of loop L1 (seven diagonal blocks).
func Fig3() string {
	res, err := partition.Compute(loop.L1(), partition.NonDuplicate)
	if err != nil {
		panic(err)
	}
	return "Fig. 3 — iteration partition of loop L1 by Ψ = span{(1,1)}\n\n" +
		iterationGrid(res.Iter)
}

// Fig4 shows the duplicate-data partition of arrays A and B of loop L2:
// one block per iteration, with the shared anti-diagonal elements of A
// replicated.
func Fig4() string {
	res, err := partition.Compute(loop.L2(), partition.Duplicate)
	if err != nil {
		panic(err)
	}
	var b strings.Builder
	b.WriteString("Fig. 4 — data partition of loop L2 with duplicate data (16 blocks)\n\n")
	for _, array := range []string{"A", "B"} {
		b.WriteString(dataBlocksGrid("array "+array, res.Data[array]))
		fmt.Fprintf(&b, "copy factor: %.2f\n\n", res.Data[array].CopyFactor)
	}
	return b.String()
}

// Fig5 shows the iteration partition of loop L2 under the duplicate
// strategy: 16 singleton blocks.
func Fig5() string {
	res, err := partition.Compute(loop.L2(), partition.Duplicate)
	if err != nil {
		panic(err)
	}
	return "Fig. 5 — iteration partition of loop L2 by Ψʳ = span{} (fully parallel)\n\n" +
		iterationGrid(res.Iter)
}

// Fig6 is the general data reference graph template of Definition 6: the
// four structural connection rules between write vertices w_i and read
// vertices r_j.
func Fig6() string {
	return `Fig. 6 — data reference graph G^A of array A for a loop L (Definition 6)

vertices: W^A = {w1 … wm} (left-hand-side references, statement order)
          R^A = {r1 … rv} (right-hand-side references)

edges (when the dependence exists between the reference pair):
  1. (w_i, w_j)  output dependences δo, for all 1 ≤ i < j ≤ m
  2. (r_i, r_j)  input dependences δi, for all 1 ≤ i < j ≤ v
  3. (w_1..w_τj, r_j)  flow dependences δf  (writes preceding the read)
  4. (r_j, w_τj+1..w_m) antidependences δa  (writes following the read)

Computed instances of this graph are available for any analyzed loop via
deps.Analysis.ReferenceGraph; Fig. 7 shows it for loop L3.
`
}

// Fig7 is the data reference graph of array A in loop L3, computed from
// the dependence analysis. (Vertex numbering is canonical statement
// order: our r1 is S1's read A[i-1,j-1] — the paper labels that one r2.)
func Fig7() string {
	a, err := deps.Analyze(loop.L3())
	if err != nil {
		panic(err)
	}
	return "Fig. 7 — data reference graph G^A of array A for loop L3\n\n" +
		a.ReferenceGraph("A").String()
}

// Fig8 shows the partition of array A of loop L3 under the minimal
// reduced space Ψ^minʳ = span{(1,0)} (four column blocks, restricted to
// non-redundant computations).
func Fig8() string {
	res, err := partition.Compute(loop.L3(), partition.MinimalDuplicate)
	if err != nil {
		panic(err)
	}
	return "Fig. 8 — data partition of array A of loop L3 by Ψ^minʳ = span{(1,0)}\n\n" +
		dataBlocksGrid("array A", res.Data["A"])
}

// Fig9 shows the iteration partition of loop L3 under Ψ^minʳ: solid
// points run both statements, dotted points only S2 (S1 is redundant
// there).
func Fig9() string {
	res, err := partition.Compute(loop.L3(), partition.MinimalDuplicate)
	if err != nil {
		panic(err)
	}
	red := res.Redundant
	lo, hi, _ := res.Analysis.Nest.ConstBounds()
	var b strings.Builder
	b.WriteString("Fig. 9 — iteration partition of loop L3 by Ψ^minʳ = span{(1,0)}\n\n")
	b.WriteString("(cells show block ID; '*' = S1 and S2 both execute, 'o' = only S2, S1 redundant)\n")
	for i := lo[0]; i <= hi[0]; i++ {
		for j := lo[1]; j <= hi[1]; j++ {
			it := []int64{i, j}
			blk := res.Iter.BlockOf(it)
			mark := "*"
			if red.IsRedundant(0, it) {
				mark = "o"
			}
			fmt.Fprintf(&b, " %2d%s", blk.ID, mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig10 shows the processor assignment of the transformed loop L4′ on a
// 2×2 grid: the forall plane with per-block iteration counts and owner
// processors, and the resulting per-processor workloads (16 each).
func Fig10() string {
	psi := space.SpanInts(3, []int64{1, -1, 1})
	tr, err := transform.TransformWithBasis(loop.L4(), psi, [][]int64{{1, 1, 0}, {-1, 0, 1}})
	if err != nil {
		panic(err)
	}
	asg := assign.Assign(tr, 4)
	counts := map[string]int64{}
	tr.Visit(nil, func(forall, _ []int64) {
		counts[fmt.Sprint(forall)]++
	})
	var b strings.Builder
	b.WriteString("Fig. 10 — processor assignment of loop L4′ on a 2×2 grid\n\n")
	b.WriteString("(rows: i1' = 2..8; cols: i2' = -3..3; cells: iterations@PE)\n")
	for i1p := int64(2); i1p <= 8; i1p++ {
		for i2p := int64(-3); i2p <= 3; i2p++ {
			f := []int64{i1p, i2p}
			c, ok := counts[fmt.Sprint(f)]
			if !ok {
				b.WriteString("     ·")
				continue
			}
			fmt.Fprintf(&b, " %2d@P%d", c, asg.OwnerID(f))
		}
		b.WriteString("\n")
	}
	b.WriteString("\nper-processor workloads:\n")
	loads := asg.Workloads()
	ids := make([]int, len(loads))
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "  PE%d: %d iterations\n", id, loads[id])
	}
	return b.String()
}
