package figures

import (
	"strings"
	"testing"
)

func TestRenderDispatch(t *testing.T) {
	for n := 1; n <= 10; n++ {
		s, err := Render(n)
		if err != nil {
			t.Errorf("fig %d: %v", n, err)
		}
		if len(s) == 0 {
			t.Errorf("fig %d empty", n)
		}
	}
	for _, n := range []int{0, 11} {
		if _, err := Render(n); err == nil {
			t.Errorf("fig %d should not exist", n)
		}
	}
}

func TestFig6Fig7Graphs(t *testing.T) {
	s6 := Fig6()
	for _, want := range []string{"Definition 6", "δo", "δf", "δa", "δi"} {
		if !strings.Contains(s6, want) {
			t.Errorf("Fig6 missing %q", want)
		}
	}
	s7 := Fig7()
	for _, want := range []string{"G^A:", "w1", "w2", "r1", "r2", "--δf-->", "--δa-->"} {
		if !strings.Contains(s7, want) {
			t.Errorf("Fig7 missing %q:\n%s", want, s7)
		}
	}
}

func TestFig1Content(t *testing.T) {
	s := Fig1()
	// L1's data-referenced vectors: (2,1) for A, (1,1) for C, none for B.
	if !strings.Contains(s, "(2,1)") {
		t.Error("missing A's vector (2,1)")
	}
	if !strings.Contains(s, "(1,1)") {
		t.Error("missing C's vector (1,1)")
	}
	if !strings.Contains(s, "none (single reference)") {
		t.Error("missing B's no-vector note")
	}
	// Array A's data space spans rows 0..8 (paper writes A[0:8, 0:4]).
	if !strings.Contains(s, "array A  [0:8, 0:4]") {
		t.Errorf("A bounding box wrong:\n%s", s)
	}
	// Odd rows of A are unused (H maps to even first coordinates).
	if !strings.Contains(s, "·") {
		t.Error("unused elements not marked")
	}
}

func TestFig2SevenBlocks(t *testing.T) {
	s := Fig2()
	if !strings.Contains(s, "7 blocks per array") {
		t.Error("missing block count")
	}
	// Highest block ID is 7.
	if !strings.Contains(s, "7") {
		t.Error("no block 7")
	}
	if strings.Contains(s, "  +") {
		t.Error("non-duplicate figure shows duplicated elements")
	}
}

func TestFig3BlockLayout(t *testing.T) {
	s := Fig3()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Last four lines are the 4×4 grid; the diagonal of the grid shares
	// one block. Corner (1,1) is in a different block from (1,4).
	grid := lines[len(lines)-4:]
	if len(grid) != 4 {
		t.Fatalf("grid lines = %d", len(grid))
	}
	// Base-point markers exist (7 of them, excluding the legend's).
	gridOnly := strings.Join(grid, "\n")
	if strings.Count(gridOnly, "*") != 7 {
		t.Errorf("base points marked = %d, want 7", strings.Count(gridOnly, "*"))
	}
}

func TestFig4Duplication(t *testing.T) {
	s := Fig4()
	// A must show replicated elements (+n cells); B must not.
	if !strings.Contains(s, "+") {
		t.Error("A's duplicated elements not shown")
	}
	if !strings.Contains(s, "copy factor") {
		t.Error("copy factor missing")
	}
}

func TestFig5SixteenSingletons(t *testing.T) {
	s := Fig5()
	if !strings.Contains(s, "fully parallel") {
		t.Error("missing title")
	}
	// Block IDs 1..16 all present.
	for id := 1; id <= 16; id++ {
		if !strings.Contains(s, " "+pad(id)) {
			t.Errorf("block %d missing", id)
		}
	}
}

func pad(n int) string {
	if n < 10 {
		return " " + string(rune('0'+n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestFig8FourColumnBlocks(t *testing.T) {
	s := Fig8()
	if !strings.Contains(s, "span{(1,0)}") {
		t.Error("missing space")
	}
}

func TestFig9RedundantMarks(t *testing.T) {
	s := Fig9()
	// 12 redundant S1 computations marked 'o', 4 solid '*'.
	if got := strings.Count(s, "o"); got < 12 {
		t.Errorf("dotted points = %d, want ≥ 12", got)
	}
	// Count '*' in the grid area only (skip the legend line).
	legendEnd := strings.Index(s, "redundant)") + len("redundant)")
	gridPart := s[legendEnd:]
	if got := strings.Count(gridPart, "*"); got != 4 {
		t.Errorf("solid points = %d, want 4", got)
	}
}

func TestFig10BalancedWorkloads(t *testing.T) {
	s := Fig10()
	for pe := 0; pe < 4; pe++ {
		want := "PE" + string(rune('0'+pe)) + ": 16 iterations"
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	// The central block (i1'=5, i2'=0) has 4 iterations.
	if !strings.Contains(s, " 4@P") {
		t.Error("missing a 4-iteration block")
	}
}
