package space

import (
	"math/rand"
	"testing"

	"commfree/internal/linalg"
	"commfree/internal/rational"
)

func TestZeroFullBasics(t *testing.T) {
	z := Zero(3)
	if z.Dim() != 0 || !z.IsZero() || z.IsFull() || z.Ambient() != 3 {
		t.Errorf("Zero(3) wrong: dim=%d", z.Dim())
	}
	f := Full(3)
	if f.Dim() != 3 || f.IsZero() || !f.IsFull() {
		t.Errorf("Full(3) wrong: dim=%d", f.Dim())
	}
	if !z.SubspaceOf(f) || f.SubspaceOf(z) {
		t.Error("subspace relations wrong")
	}
}

func TestSpanDedupAndDim(t *testing.T) {
	// L1 partitioning space: span{(1,1)} ∪ span{(1,1)} = span{(1,1)}.
	s := SpanInts(2, []int64{1, 1}, []int64{1, 1}, []int64{2, 2})
	if s.Dim() != 1 {
		t.Errorf("dim = %d, want 1", s.Dim())
	}
	if !s.ContainsInts([]int64{3, 3}) {
		t.Error("(3,3) should be in span{(1,1)}")
	}
	if s.ContainsInts([]int64{1, 0}) {
		t.Error("(1,0) should not be in span{(1,1)}")
	}
	// Zero vectors contribute nothing.
	s2 := SpanInts(2, []int64{0, 0})
	if !s2.IsZero() {
		t.Errorf("span{0} dim = %d", s2.Dim())
	}
}

func TestSpanEquality(t *testing.T) {
	// Different generating sets, same space.
	a := SpanInts(2, []int64{1, -1}, []int64{1, 1}) // = Q²
	b := Full(2)
	if !a.Equal(b) {
		t.Errorf("span{(1,-1),(1,1)} != Q²: %s vs %s", a, b)
	}
	// L2 nonduplicate partitioning space span{(1,-1),(1/2,1/2)} = Q².
	half := []rational.Rat{rational.New(1, 2), rational.New(1, 2)}
	c := Span(2, RatVec([]int64{1, -1}), half)
	if !c.IsFull() {
		t.Errorf("L2 Ψ should be full, got %s", c)
	}
}

func TestUnion(t *testing.T) {
	// L5: Ψ_A ∪ Ψ_B ∪ Ψ_C = Q³ (sequential under non-duplicate strategy).
	psiA := SpanInts(3, []int64{0, 1, 0})
	psiB := SpanInts(3, []int64{1, 0, 0})
	psiC := SpanInts(3, []int64{0, 0, 1})
	psi := UnionAll(3, psiA, psiB, psiC)
	if !psi.IsFull() {
		t.Errorf("L5 Ψ should be Q³, got %s", psi)
	}
	// L5′ variant: span{(0,1,0)} ∪ span{(0,0,1)} has dim 2.
	psi2 := psiA.Union(psiC)
	if psi2.Dim() != 2 {
		t.Errorf("dim = %d, want 2", psi2.Dim())
	}
	if !psiA.SubspaceOf(psi2) || !psiC.SubspaceOf(psi2) {
		t.Error("union does not contain operands")
	}
	if psiB.SubspaceOf(psi2) {
		t.Error("(1,0,0) should not be in span{(0,1,0),(0,0,1)}")
	}
}

func TestOrthogonalComplementL4(t *testing.T) {
	// Section IV worked example: Ψ = span{(1,-1,1)};
	// Ker(Ψ) = span{(1,1,0),(-1,0,1)}.
	psi := SpanInts(3, []int64{1, -1, 1})
	q := psi.OrthogonalComplement()
	if q.Dim() != 2 {
		t.Fatalf("dim Ker(Ψ) = %d, want 2", q.Dim())
	}
	if !q.ContainsInts([]int64{1, 1, 0}) || !q.ContainsInts([]int64{-1, 0, 1}) {
		t.Errorf("Ker(Ψ) = %s missing paper's basis vectors", q)
	}
	// Orthogonality of every basis pair.
	for _, u := range q.Basis() {
		if !linalg.Dot(u, RatVec([]int64{1, -1, 1})).IsZero() {
			t.Errorf("basis vector %v not orthogonal to (1,-1,1)", u)
		}
	}
	// Integer basis must be primitive.
	for _, v := range q.OrthogonalComplementIntegerBasis() {
		// complement of complement = original space; also gcd check
		g := int64(0)
		for _, x := range v {
			if x < 0 {
				x = -x
			}
			for x != 0 {
				g, x = x, g%x
			}
		}
		if g != 1 {
			t.Errorf("integer basis vector %v not primitive", v)
		}
	}
}

func TestOrthogonalComplementEdges(t *testing.T) {
	if !Zero(3).OrthogonalComplement().IsFull() {
		t.Error("complement of {0} should be full")
	}
	if !Full(3).OrthogonalComplement().IsZero() {
		t.Error("complement of full should be {0}")
	}
}

func TestIntegerBasisPrimitive(t *testing.T) {
	// Basis with fractional RREF entries: span{(2,1)} has RREF (1,1/2),
	// integer basis must be (2,1).
	s := SpanInts(2, []int64{2, 1})
	ib := s.IntegerBasis()
	if len(ib) != 1 || ib[0][0] != 2 || ib[0][1] != 1 {
		t.Errorf("IntegerBasis = %v, want [(2,1)]", ib)
	}
}

func TestString(t *testing.T) {
	if got := Zero(2).String(); got != "span{}" {
		t.Errorf("String = %q", got)
	}
	if got := SpanInts(2, []int64{1, 1}).String(); got != "span{(1,1)}" {
		t.Errorf("String = %q", got)
	}
}

func TestPropComplementProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(3)
		k := rnd.Intn(n + 1)
		vecs := make([][]int64, k)
		for i := range vecs {
			vecs[i] = make([]int64, n)
			for j := range vecs[i] {
				vecs[i][j] = rnd.Int63n(9) - 4
			}
		}
		s := SpanInts(n, vecs...)
		c := s.OrthogonalComplement()
		// Dimension formula.
		if s.Dim()+c.Dim() != n {
			t.Fatalf("dim %d + codim %d != %d", s.Dim(), c.Dim(), n)
		}
		// Every pair orthogonal.
		for _, u := range s.Basis() {
			for _, v := range c.Basis() {
				if !linalg.Dot(u, v).IsZero() {
					t.Fatalf("non-orthogonal pair %v · %v", u, v)
				}
			}
		}
		// Double complement is the original space.
		if !c.OrthogonalComplement().Equal(s) {
			t.Fatalf("double complement mismatch for %s", s)
		}
	}
}

func TestPropUnionMonotone(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(3)
		mk := func() *Space {
			k := rnd.Intn(n)
			vecs := make([][]int64, k)
			for i := range vecs {
				vecs[i] = make([]int64, n)
				for j := range vecs[i] {
					vecs[i][j] = rnd.Int63n(7) - 3
				}
			}
			return SpanInts(n, vecs...)
		}
		a, b := mk(), mk()
		u := a.Union(b)
		if !a.SubspaceOf(u) || !b.SubspaceOf(u) {
			t.Fatal("union not containing operands")
		}
		if !u.Equal(b.Union(a)) {
			t.Fatal("union not commutative")
		}
		if u.Dim() > a.Dim()+b.Dim() {
			t.Fatal("union dim exceeds sum")
		}
		if u.Dim() < a.Dim() || u.Dim() < b.Dim() {
			t.Fatal("union dim below operand")
		}
	}
}
