// Package space represents linear subspaces of Qⁿ — the "partitioning
// spaces" Ψ at the heart of the paper.
//
// A Space is stored as a reduced-row-echelon basis, which makes span
// equality, membership, union, and dimension queries canonical and cheap.
// The orthogonal complement (the paper writes Ker(Ψ) in Section IV) is
// returned as a gcd-normalized integer basis, exactly as the program
// transformation requires (each basis vector ā has gcd(ā) = 1).
package space

import (
	"fmt"
	"strings"

	"commfree/internal/intlin"
	"commfree/internal/linalg"
	"commfree/internal/rational"
)

// Space is a linear subspace of Qⁿ. The zero Space is invalid; construct
// with Span or Zero. Spaces are immutable.
type Space struct {
	n     int            // ambient dimension
	basis *linalg.Matrix // RREF basis, one vector per row; 0×n when trivial
}

// Zero returns the trivial subspace {0} of Qⁿ.
func Zero(n int) *Space {
	if n < 0 {
		panic(fmt.Errorf("space: negative ambient dimension %d", n))
	}
	return &Space{n: n, basis: linalg.NewMatrix(0, n)}
}

// Full returns the whole space Qⁿ.
func Full(n int) *Space {
	return &Space{n: n, basis: linalg.Identity(n)}
}

// Span returns the span of the given vectors in Qⁿ. All vectors must have
// length n. Zero and duplicate vectors are tolerated.
func Span(n int, vectors ...[]rational.Rat) *Space {
	for i, v := range vectors {
		if len(v) != n {
			panic(fmt.Errorf("space: vector %d has length %d, ambient %d", i, len(v), n))
		}
	}
	if len(vectors) == 0 {
		return Zero(n)
	}
	m := linalg.FromRats(vectors)
	r, pivots := m.RREF()
	b := linalg.NewMatrix(len(pivots), n)
	for i := range pivots {
		for j := 0; j < n; j++ {
			b.Set(i, j, r.At(i, j))
		}
	}
	return &Space{n: n, basis: b}
}

// SpanInts is Span for integer vectors.
func SpanInts(n int, vectors ...[]int64) *Space {
	rv := make([][]rational.Rat, len(vectors))
	for i, v := range vectors {
		if len(v) != n {
			panic(fmt.Errorf("space: vector %d has length %d, ambient %d", i, len(v), n))
		}
		rv[i] = make([]rational.Rat, n)
		for j, x := range v {
			rv[i][j] = rational.FromInt(x)
		}
	}
	return Span(n, rv...)
}

// Ambient returns the ambient dimension n.
func (s *Space) Ambient() int { return s.n }

// Dim returns the dimension of the subspace.
func (s *Space) Dim() int { return s.basis.Rows() }

// IsZero reports whether the subspace is trivial.
func (s *Space) IsZero() bool { return s.Dim() == 0 }

// IsFull reports whether the subspace is all of Qⁿ.
func (s *Space) IsFull() bool { return s.Dim() == s.n }

// Basis returns the canonical (RREF) basis vectors, one per row.
func (s *Space) Basis() [][]rational.Rat {
	out := make([][]rational.Rat, s.basis.Rows())
	for i := range out {
		out[i] = s.basis.Row(i)
	}
	return out
}

// IntegerBasis returns the canonical basis scaled to primitive integer
// vectors (each with positive leading entry and entry gcd 1).
func (s *Space) IntegerBasis() [][]int64 {
	out := make([][]int64, 0, s.Dim())
	for _, row := range s.Basis() {
		out = append(out, toPrimitiveInt(row))
	}
	return out
}

// toPrimitiveInt scales a rational vector by the lcm of denominators and
// reduces by the gcd, yielding a primitive integer vector.
func toPrimitiveInt(v []rational.Rat) []int64 {
	l := int64(1)
	for _, x := range v {
		l = rational.LCM(l, x.Den())
	}
	iv := make([]int64, len(v))
	for i, x := range v {
		iv[i] = x.Num() * (l / x.Den())
	}
	return intlin.Primitive(iv)
}

// Contains reports whether vector v lies in the subspace.
func (s *Space) Contains(v []rational.Rat) bool {
	if len(v) != s.n {
		panic(fmt.Errorf("space: vector length %d, ambient %d", len(v), s.n))
	}
	if linalg.IsZeroVec(v) {
		return true
	}
	if s.IsZero() {
		return false
	}
	// v ∈ span(B) iff rank(B) == rank(B ∪ {v}).
	rows := s.Basis()
	rows = append(rows, v)
	return linalg.FromRats(rows).Rank() == s.Dim()
}

// ContainsInts is Contains for an integer vector.
func (s *Space) ContainsInts(v []int64) bool {
	rv := make([]rational.Rat, len(v))
	for i, x := range v {
		rv[i] = rational.FromInt(x)
	}
	return s.Contains(rv)
}

// Union returns the smallest subspace containing both s and t (their sum).
func (s *Space) Union(t *Space) *Space {
	if s.n != t.n {
		panic(fmt.Errorf("space: ambient mismatch %d vs %d", s.n, t.n))
	}
	rows := append(s.Basis(), t.Basis()...)
	return Span(s.n, rows...)
}

// UnionAll returns the sum of all the given spaces in Qⁿ.
func UnionAll(n int, spaces ...*Space) *Space {
	acc := Zero(n)
	for _, sp := range spaces {
		acc = acc.Union(sp)
	}
	return acc
}

// Equal reports whether s and t are the same subspace.
func (s *Space) Equal(t *Space) bool {
	return s.n == t.n && s.basis.Equal(t.basis)
}

// SubspaceOf reports whether s ⊆ t.
func (s *Space) SubspaceOf(t *Space) bool {
	if s.n != t.n {
		return false
	}
	for _, v := range s.Basis() {
		if !t.Contains(v) {
			return false
		}
	}
	return true
}

// OrthogonalComplement returns the subspace of all vectors orthogonal to s
// (the paper's Ker(Ψ) used in Section IV's projection step).
func (s *Space) OrthogonalComplement() *Space {
	if s.IsZero() {
		return Full(s.n)
	}
	// Null space of the basis matrix: x with B·x = 0 ⇔ x ⟂ every basis row.
	ns := s.basis.NullSpace()
	return Span(s.n, ns...)
}

// OrthogonalComplementIntegerBasis returns a primitive-integer basis
// (gcd(ā) = 1 per vector) of the orthogonal complement, the basis Q the
// transformation of Section IV starts from.
func (s *Space) OrthogonalComplementIntegerBasis() [][]int64 {
	return s.OrthogonalComplement().IntegerBasis()
}

// String renders the space as span{...} with integer-normalized vectors.
func (s *Space) String() string {
	if s.IsZero() {
		return "span{}"
	}
	var parts []string
	for _, v := range s.IntegerBasis() {
		var comps []string
		for _, x := range v {
			comps = append(comps, fmt.Sprintf("%d", x))
		}
		parts = append(parts, "("+strings.Join(comps, ",")+")")
	}
	return "span{" + strings.Join(parts, ", ") + "}"
}

// RatVec converts an integer vector to a rational vector.
func RatVec(v []int64) []rational.Rat {
	out := make([]rational.Rat, len(v))
	for i, x := range v {
		out[i] = rational.FromInt(x)
	}
	return out
}
