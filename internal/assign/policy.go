package assign

// Scheduling policies. The paper argues for the cyclic ("mod")
// distribution because neighboring blocks of a skewed partition have
// nearly equal sizes, so interleaving them balances load; a blocked
// (contiguous-range) distribution assigns whole regions of the forall
// space and concentrates the large central blocks of diagonal partitions
// on few processors. AssignWithPolicy exposes both so the claim is
// measurable (see BenchmarkSchedulingPolicies and the policy tests).

import (
	"fmt"
)

// Policy selects how forall points map to grid coordinates.
type Policy int

const (
	// Cyclic is the paper's mod distribution (default).
	Cyclic Policy = iota
	// Blocked assigns contiguous key ranges per dimension.
	Blocked
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Cyclic:
		return "cyclic"
	case Blocked:
		return "blocked"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PolicyAssignment wraps an Assignment with a scheduling policy.
type PolicyAssignment struct {
	*Assignment
	Policy Policy
	// per-dimension key ranges of the nonempty forall points (Blocked).
	min, max []int64
}

// AssignWithPolicy builds an assignment under the given policy.
func AssignWithPolicy(a *Assignment, policy Policy) *PolicyAssignment {
	pa := &PolicyAssignment{Assignment: a, Policy: policy}
	if policy == Blocked && a.Tr.K > 0 {
		pa.min = make([]int64, a.Tr.K)
		pa.max = make([]int64, a.Tr.K)
		first := true
		for _, f := range a.Tr.ForallPoints() {
			for i := 0; i < a.Tr.K; i++ {
				if first || f[i] < pa.min[i] {
					pa.min[i] = f[i]
				}
				if first || f[i] > pa.max[i] {
					pa.max[i] = f[i]
				}
			}
			first = false
		}
	}
	return pa
}

// OwnerCoords maps a forall point to processor grid coordinates under the
// policy.
func (pa *PolicyAssignment) OwnerCoords(forall []int64) []int {
	if pa.Policy == Cyclic {
		return pa.Assignment.OwnerCoords(forall)
	}
	coords := make([]int, len(pa.Dims))
	for i := range pa.Dims {
		extent := pa.max[i] - pa.min[i] + 1
		if extent <= 0 {
			coords[i] = 0
			continue
		}
		c := int((forall[i] - pa.min[i]) * int64(pa.Dims[i]) / extent)
		if c >= pa.Dims[i] {
			c = pa.Dims[i] - 1
		}
		if c < 0 {
			c = 0
		}
		coords[i] = c
	}
	return coords
}

// OwnerID linearizes OwnerCoords.
func (pa *PolicyAssignment) OwnerID(forall []int64) int {
	id := 0
	for i, c := range pa.OwnerCoords(forall) {
		id = id*pa.Dims[i] + c
	}
	return id
}

// Workloads returns per-processor iteration counts under the policy.
func (pa *PolicyAssignment) Workloads() []int64 {
	loads := make([]int64, pa.NumProcessors())
	pa.Tr.Visit(nil, func(forall, _ []int64) {
		loads[pa.OwnerID(forall)]++
	})
	return loads
}

// Imbalance returns (max − min) / mean over the policy's workloads.
func (pa *PolicyAssignment) Imbalance() float64 {
	loads := pa.Workloads()
	if len(loads) == 0 {
		return 0
	}
	min, max, sum := loads[0], loads[0], int64(0)
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max-min) / mean
}
