package assign

// JSON-stable view of a processor assignment, for serving plans over
// the wire.

// BlockOwner maps one forall point (block) to its processor.
type BlockOwner struct {
	Forall    []int64 `json:"forall"`
	Processor int     `json:"processor"`
}

// Info is the wire form of an assignment.
type Info struct {
	// Processors is the requested machine size; GridDims the factored
	// p₁×…×p_k grid the cyclic mapping uses.
	Processors int   `json:"processors"`
	GridDims   []int `json:"grid_dims"`
	// Workloads is iterations per processor; Imbalance is
	// max/mean − 1 over the non-empty processors.
	Workloads []int64 `json:"workloads"`
	Imbalance float64 `json:"imbalance"`
	// Blocks lists every forall point with its owning processor, in
	// the transformed loop's enumeration order.
	Blocks []BlockOwner `json:"blocks"`
}

// Info builds the JSON-stable view.
func (a *Assignment) Info() Info {
	info := Info{
		Processors: a.P,
		GridDims:   a.Dims,
		Workloads:  a.Workloads(),
		Imbalance:  a.Imbalance(),
		Blocks:     []BlockOwner{},
	}
	if info.GridDims == nil {
		info.GridDims = []int{}
	}
	for _, f := range a.Tr.ForallPoints() {
		info.Blocks = append(info.Blocks, BlockOwner{Forall: f, Processor: a.OwnerID(f)})
	}
	return info
}
