package assign

import (
	"fmt"
	"testing"

	"commfree/internal/loop"
	"commfree/internal/space"
	"commfree/internal/transform"
)

func l4Transformed(t *testing.T) *transform.Transformed {
	t.Helper()
	psi := space.SpanInts(3, []int64{1, -1, 1})
	tr, err := transform.TransformWithBasis(loop.L4(), psi, [][]int64{{1, 1, 0}, {-1, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFactor(t *testing.T) {
	cases := []struct {
		p, k int
		want []int
	}{
		{4, 2, []int{2, 2}},
		{16, 2, []int{4, 4}},
		{16, 1, []int{16}},
		{8, 3, []int{2, 2, 2}},
		{27, 3, []int{3, 3, 3}},
		{12, 2, []int{3, 4}},
		{5, 2, []int{2, 2}},
		{1, 2, []int{1, 1}},
		{7, 1, []int{7}},
	}
	for _, c := range cases {
		got := Factor(c.p, c.k)
		if len(got) != len(c.want) {
			t.Errorf("Factor(%d,%d) = %v, want %v", c.p, c.k, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Factor(%d,%d) = %v, want %v", c.p, c.k, got, c.want)
				break
			}
		}
	}
	if Factor(4, 0) != nil {
		t.Error("Factor with k=0 should be nil")
	}
}

func TestFig10Workloads(t *testing.T) {
	// Fig. 10: L4′ on 4 processors (2×2 grid) — every processor executes
	// exactly 16 iterations.
	a := Assign(l4Transformed(t), 4)
	if a.NumProcessors() != 4 {
		t.Fatalf("processors = %d", a.NumProcessors())
	}
	loads := a.Workloads()
	var total int64
	for id, l := range loads {
		if l != 16 {
			t.Errorf("PE%d load = %d, want 16", id, l)
		}
		total += l
	}
	if total != 64 {
		t.Errorf("total = %d, want 64", total)
	}
	if a.Imbalance() != 0 {
		t.Errorf("imbalance = %v, want 0", a.Imbalance())
	}
}

func TestOwnerCyclic(t *testing.T) {
	a := Assign(l4Transformed(t), 4)
	// Neighboring forall points along each axis land on different
	// processors (mod distribution).
	c1 := a.OwnerCoords([]int64{2, 0})
	c2 := a.OwnerCoords([]int64{3, 0})
	if c1[0] == c2[0] {
		t.Error("adjacent i1' blocks share the first grid coordinate")
	}
	c3 := a.OwnerCoords([]int64{2, 1})
	if c1[1] == c3[1] {
		t.Error("adjacent i2' blocks share the second grid coordinate")
	}
	// Negative keys map canonically.
	c := a.OwnerCoords([]int64{2, -3})
	if c[1] < 0 || c[1] > 1 {
		t.Errorf("negative key coords = %v", c)
	}
}

func TestOwnerIDConsistentWithBlocksOf(t *testing.T) {
	a := Assign(l4Transformed(t), 4)
	seen := map[string]bool{}
	for id := 0; id < a.NumProcessors(); id++ {
		for _, f := range a.BlocksOf(id) {
			key := fmt.Sprint(f)
			if seen[key] {
				t.Fatalf("forall point %v owned twice", f)
			}
			seen[key] = true
			if a.OwnerID(f) != id {
				t.Errorf("OwnerID(%v) = %d, want %d", f, a.OwnerID(f), id)
			}
		}
	}
	if len(seen) != 37 {
		t.Errorf("assigned blocks = %d, want 37", len(seen))
	}
}

func TestSequentialAssignment(t *testing.T) {
	tr, err := transform.Transform(loop.L2(), space.Full(2))
	if err != nil {
		t.Fatal(err)
	}
	a := Assign(tr, 8)
	if a.NumProcessors() != 1 {
		t.Errorf("sequential loop should use one processor, got %d", a.NumProcessors())
	}
	loads := a.Workloads()
	if len(loads) != 1 || loads[0] != 16 {
		t.Errorf("loads = %v", loads)
	}
}

func TestMoreProcessorsThanBlocks(t *testing.T) {
	// L1's 7 diagonal blocks on 16 processors: at most 7 busy.
	res := spanPsiL1(t)
	a := Assign(res, 16)
	loads := a.Workloads()
	busy := 0
	var total int64
	for _, l := range loads {
		if l > 0 {
			busy++
		}
		total += l
	}
	if busy > 7 {
		t.Errorf("busy processors = %d > 7 blocks", busy)
	}
	if total != 16 {
		t.Errorf("total iterations = %d", total)
	}
}

func spanPsiL1(t *testing.T) *transform.Transformed {
	t.Helper()
	tr, err := transform.Transform(loop.L1(), space.SpanInts(2, []int64{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestL1CyclicBalance(t *testing.T) {
	// 7 blocks of sizes 1,2,3,4,3,2,1 on 2 processors: cyclic assignment
	// alternates blocks, loads 8/8.
	a := Assign(spanPsiL1(t), 2)
	loads := a.Workloads()
	if len(loads) != 2 || loads[0]+loads[1] != 16 {
		t.Fatalf("loads = %v", loads)
	}
	if loads[0] != 8 || loads[1] != 8 {
		t.Errorf("loads = %v, want perfectly balanced 8/8", loads)
	}
}

func TestSummary(t *testing.T) {
	a := Assign(l4Transformed(t), 4)
	s := a.Summary()
	if s == "" || a.Imbalance() != 0 {
		t.Errorf("summary = %q imbalance = %v", s, a.Imbalance())
	}
}
