package assign

import (
	"testing"
)

func TestPolicyStrings(t *testing.T) {
	if Cyclic.String() != "cyclic" || Blocked.String() != "blocked" {
		t.Error("policy names wrong")
	}
}

func TestCyclicPolicyMatchesAssignment(t *testing.T) {
	a := Assign(l4Transformed(t), 4)
	pa := AssignWithPolicy(a, Cyclic)
	base := a.Workloads()
	pol := pa.Workloads()
	for i := range base {
		if base[i] != pol[i] {
			t.Fatalf("cyclic policy diverges from base assignment: %v vs %v", base, pol)
		}
	}
	if pa.Imbalance() != 0 {
		t.Errorf("cyclic imbalance = %v", pa.Imbalance())
	}
}

func TestBlockedPolicyConservesWork(t *testing.T) {
	a := Assign(l4Transformed(t), 4)
	pa := AssignWithPolicy(a, Blocked)
	loads := pa.Workloads()
	var sum int64
	for _, l := range loads {
		sum += l
	}
	if sum != 64 {
		t.Errorf("blocked workloads sum = %d, want 64: %v", sum, loads)
	}
}

// TestCyclicBeatsBlockedOnL4 is the paper's load-balancing claim made
// measurable: the diagonal partition of L4 has its big blocks in the
// middle of the forall space, so contiguous ranges are uneven while the
// cyclic distribution is perfectly balanced.
func TestCyclicBeatsBlockedOnL4(t *testing.T) {
	a := Assign(l4Transformed(t), 4)
	cyc := AssignWithPolicy(a, Cyclic)
	blk := AssignWithPolicy(a, Blocked)
	if cyc.Imbalance() != 0 {
		t.Errorf("cyclic imbalance = %v, want 0", cyc.Imbalance())
	}
	if blk.Imbalance() <= cyc.Imbalance() {
		t.Errorf("blocked imbalance %v not worse than cyclic %v (loads %v)",
			blk.Imbalance(), cyc.Imbalance(), blk.Workloads())
	}
}

func TestBlockedCoordsWithinGrid(t *testing.T) {
	a := Assign(l4Transformed(t), 4)
	pa := AssignWithPolicy(a, Blocked)
	for _, f := range a.Tr.ForallPoints() {
		for i, c := range pa.OwnerCoords(f) {
			if c < 0 || c >= a.Dims[i] {
				t.Fatalf("coords out of grid: %v for %v", c, f)
			}
		}
	}
}

func TestPoliciesOnSequentialLoop(t *testing.T) {
	tr := spanPsiL1(t)
	a := Assign(tr, 2)
	for _, pol := range []Policy{Cyclic, Blocked} {
		pa := AssignWithPolicy(a, pol)
		loads := pa.Workloads()
		var sum int64
		for _, l := range loads {
			sum += l
		}
		if sum != 16 {
			t.Errorf("%s: sum = %d", pol, sum)
		}
	}
}
