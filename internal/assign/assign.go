// Package assign maps the forall space of a transformed loop onto a
// fixed-size processor grid (Section IV of the paper).
//
// The paper numbers p processors as a k-dimensional grid p₁×…×p_k with
// pᵢ = ⌊p^(1/k)⌋ for i < k and p_k = ⌊p / ⌊p^(1/k)⌋^(k−1)⌋, and assigns
// forall point (I′_{y₁}, …, I′_{y_k}) to processor (I′_{y₁} mod p₁, …,
// I′_{y_k} mod p_k) — the cyclic ("mod") distribution. Neighboring blocks
// have nearly equal iteration counts, so the cyclic assignment balances
// the workload.
package assign

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"commfree/internal/transform"
)

// Factor returns the paper's grid factorization p₁×…×p_k of p processors.
// For k = 0 (a sequential loop) it returns an empty slice.
func Factor(p, k int) []int {
	if p < 1 {
		panic(fmt.Errorf("assign: processor count %d < 1", p))
	}
	if k <= 0 {
		return nil
	}
	dims := make([]int, k)
	side := int(math.Floor(math.Pow(float64(p), 1/float64(k))))
	if side < 1 {
		side = 1
	}
	// Floating-point roots can land just below the exact integer root
	// (e.g. p=27, k=3 → 2.9999); fix up.
	for pow(side+1, k) <= p {
		side++
	}
	rest := p
	for i := 0; i < k-1; i++ {
		dims[i] = side
		rest /= side
	}
	dims[k-1] = rest
	return dims
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// Assignment is a cyclic mapping of forall points to processors.
type Assignment struct {
	Tr   *transform.Transformed
	P    int   // requested processor count
	Dims []int // grid shape p₁×…×p_k (len = Tr.K, or empty when K = 0)
}

// Assign builds the cyclic assignment for p processors.
func Assign(tr *transform.Transformed, p int) *Assignment {
	return &Assignment{Tr: tr, P: p, Dims: Factor(p, tr.K)}
}

// OwnerCoords returns the grid coordinates of the processor owning the
// forall point: aᵢ = forall_i mod pᵢ (canonical, non-negative).
func (a *Assignment) OwnerCoords(forall []int64) []int {
	coords := make([]int, len(a.Dims))
	for i := range a.Dims {
		m := int(((forall[i] % int64(a.Dims[i])) + int64(a.Dims[i])) % int64(a.Dims[i]))
		coords[i] = m
	}
	return coords
}

// OwnerID linearizes OwnerCoords row-major into [0, NumProcessors()).
func (a *Assignment) OwnerID(forall []int64) int {
	id := 0
	for i, c := range a.OwnerCoords(forall) {
		id = id*a.Dims[i] + c
	}
	return id
}

// NumProcessors returns the number of grid processors actually used
// (∏ pᵢ ≤ P; 1 when the loop is sequential).
func (a *Assignment) NumProcessors() int {
	n := 1
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Workloads returns the iteration count executed by each processor ID.
func (a *Assignment) Workloads() []int64 {
	loads := make([]int64, a.NumProcessors())
	a.Tr.Visit(nil, func(forall, _ []int64) {
		loads[a.OwnerID(forall)]++
	})
	return loads
}

// BlocksOf returns the forall points owned by the processor with the
// given ID, in lexicographic order.
func (a *Assignment) BlocksOf(id int) [][]int64 {
	var out [][]int64
	for _, f := range a.Tr.ForallPoints() {
		if a.OwnerID(f) == id {
			out = append(out, f)
		}
	}
	return out
}

// Imbalance returns (max load − min load) / mean load; 0 is perfect.
func (a *Assignment) Imbalance() float64 {
	loads := a.Workloads()
	if len(loads) == 0 {
		return 0
	}
	min, max, sum := loads[0], loads[0], int64(0)
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(loads))
	return float64(max-min) / mean
}

// Summary renders the assignment as a per-processor load table.
func (a *Assignment) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "processors: %d as grid %v\n", a.NumProcessors(), a.Dims)
	loads := a.Workloads()
	ids := make([]int, len(loads))
	for i := range ids {
		ids[i] = i
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "  PE%d: %d iterations\n", id, loads[id])
	}
	fmt.Fprintf(&b, "imbalance: %.3f\n", a.Imbalance())
	return b.String()
}
