package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testRecord(key string) *Record {
	return &Record{
		Key:             key,
		CanonicalSource: "for i = 1 to 4\n  S1: A[i] = A[i] + 1\nend\n",
		Strategy:        "non-duplicate",
		Processors:      4,
		Plan:            json.RawMessage(`{"strategy":"non-duplicate"}`),
		CreatedUnixNS:   12345,
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec := testRecord("s=non-duplicate|p=4|src")
	rec.Duplicated = []string{"B", "C"}
	data, err := Encode(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode("test", data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != rec.Key || got.CanonicalSource != rec.CanonicalSource ||
		got.Strategy != rec.Strategy || got.Processors != rec.Processors ||
		fmt.Sprint(got.Duplicated) != fmt.Sprint(rec.Duplicated) ||
		string(got.Plan) != string(rec.Plan) || got.CreatedUnixNS != rec.CreatedUnixNS {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, rec)
	}
}

func TestRecordDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(testRecord("k"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"empty":          func(b []byte) []byte { return nil },
		"short header":   func(b []byte) []byte { return b[:8] },
		"bad magic":      func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":    func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:8], 99); return b },
		"truncated body": func(b []byte) []byte { return b[:len(b)-3] },
		"flipped bit":    func(b []byte) []byte { b[headerSize+2] ^= 0x40; return b },
		"huge length":    func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:12], maxPayloadBytes+1); return b },
	}
	for name, mutate := range cases {
		buf := append([]byte(nil), data...)
		if _, err := Decode("test", mutate(buf)); err == nil {
			t.Errorf("%s: Decode accepted a corrupt record", name)
		} else if _, ok := err.(*CorruptError); !ok {
			t.Errorf("%s: error %v is not a *CorruptError", name, err)
		}
	}
}

func TestFileStorePutGet(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := []string{"a", "b", "c"}
	for _, k := range keys {
		if err := s.Put(testRecord(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		rec, ok, err := s.Get(k)
		if err != nil || !ok || rec.Key != k {
			t.Fatalf("Get(%q) = %v, %v, %v", k, rec, ok, err)
		}
		if !s.Has(k) {
			t.Fatalf("Has(%q) = false after Put", k)
		}
	}
	if _, ok, err := s.Get("absent"); ok || err != nil {
		t.Fatalf("Get(absent) = %v, %v; want miss", ok, err)
	}
	if got := s.Keys(); fmt.Sprint(got) != fmt.Sprint(keys) {
		t.Fatalf("Keys() = %v, want %v", got, keys)
	}
	st := s.Stats()
	if st.Records != 3 || st.Hits != 3 || st.Misses != 1 || st.Puts != 3 {
		t.Fatalf("stats %+v", st)
	}

	// Overwrite keeps one record per key.
	if err := s.Put(testRecord("a")); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Records != 3 {
		t.Fatalf("after overwrite: %d records, want 3", st.Records)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Has("a") {
		t.Fatal("Has(a) after Delete")
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal("double delete should be a no-op:", err)
	}
}

// TestFileStoreReopen proves persistence: a reopened store serves the
// same records through the saved index, with no rebuild.
func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Records != 5 || st.IndexRebuilds != 0 {
		t.Fatalf("reopen stats %+v; want 5 records, 0 rebuilds", st)
	}
	rec, ok, err := s2.Get("k3")
	if err != nil || !ok || rec.Key != "k3" {
		t.Fatalf("Get(k3) after reopen = %v, %v, %v", rec, ok, err)
	}
}

// TestFileStoreIndexRebuild proves the index is disposable: deleting it
// (or corrupting it) forces a scan that recovers every intact record.
func TestFileStoreIndexRebuild(t *testing.T) {
	for name, damage := range map[string]func(t *testing.T, dir string){
		"missing": func(t *testing.T, dir string) { os.Remove(filepath.Join(dir, "index.json")) },
		"garbage": func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"stale": func(t *testing.T, dir string) {
			// Index lists a file that no longer matches its recorded size.
			path := filepath.Join(dir, "index.json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var doc indexDoc
			if err := json.Unmarshal(data, &doc); err != nil {
				t.Fatal(err)
			}
			doc.Records[0].Bytes += 7
			out, _ := json.Marshal(doc)
			if err := os.WriteFile(path, out, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if err := s.Put(testRecord(fmt.Sprintf("k%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			damage(t, dir)
			s2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			st := s2.Stats()
			if st.Records != 4 || st.IndexRebuilds != 1 {
				t.Fatalf("%s: stats %+v; want 4 records via 1 rebuild", name, st)
			}
			if _, ok, err := s2.Get("k2"); !ok || err != nil {
				t.Fatalf("%s: Get(k2) after rebuild failed: %v %v", name, ok, err)
			}
		})
	}
}

// TestFileStoreCorruptRecordRecovery is the CI recovery scenario: a
// record file is truncated on disk; the index rebuild skips it (counted,
// not fatal) and every other record survives.
func TestFileStoreCorruptRecordRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Put(testRecord(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Truncate k1's record mid-payload.
	victim := ""
	var doc indexDoc
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.Records {
		if e.Key == "k1" {
			victim = e.File
		}
	}
	path := filepath.Join(dir, "objects", victim)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// The truncation invalidates the index's size check, forcing the
	// rebuild scan, which CRC-rejects the half record.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Records != 3 || st.CorruptSkipped != 1 || st.IndexRebuilds != 1 {
		t.Fatalf("stats %+v; want 3 records, 1 corrupt skipped, 1 rebuild", st)
	}
	if s2.Has("k1") {
		t.Fatal("truncated record k1 survived the rebuild")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok, err := s2.Get(k); !ok || err != nil {
			t.Fatalf("intact record %s lost: %v %v", k, ok, err)
		}
	}
}

// TestFileStoreTornWrite drives the deterministic fault hook: a torn
// Put leaves a CRC-detectably truncated file and a lying index entry;
// the next Get self-heals (drops the entry, reports corruption), and
// the plan is simply absent — never wrong.
func TestFileStoreTornWrite(t *testing.T) {
	torn := map[int64]bool{2: true}
	s, err := Open(t.TempDir(), Options{
		TornWrite: func(seq int64, size int) (int, bool) {
			if torn[seq] {
				return size / 3, true
			}
			return size, false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testRecord("whole")); err != nil {
		t.Fatal(err)
	}
	err = s.Put(testRecord("torn"))
	var te *TornWriteError
	if !asErr(err, &te) {
		t.Fatalf("torn Put returned %v, want *TornWriteError", err)
	}
	if st := s.Stats(); st.TornWrites != 1 {
		t.Fatalf("stats %+v, want 1 torn write", st)
	}
	// The index (deliberately) still lists the torn record; reading it
	// detects the corruption and heals.
	if !s.Has("torn") {
		t.Fatal("torn record should still be indexed before the healing Get")
	}
	rec, ok, err := s.Get("torn")
	if ok || rec != nil {
		t.Fatalf("Get(torn) returned a record: %+v", rec)
	}
	var ce *CorruptError
	if !asErr(err, &ce) {
		t.Fatalf("Get(torn) error %v, want *CorruptError", err)
	}
	if s.Has("torn") {
		t.Fatal("corrupt entry not dropped after the healing Get")
	}
	if _, ok, err := s.Get("whole"); !ok || err != nil {
		t.Fatalf("whole record lost: %v %v", ok, err)
	}
}

// TestFileStoreHashCollision forces every key onto one hash slot's
// namespace by using keys that genuinely collide under the suffix
// scheme: same-hash files get numeric suffixes and the in-file key
// disambiguates.
func TestFileStoreHashCollision(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a collision by pre-seeding the index with a record whose
	// file name equals key "x"'s natural slot.
	recA := testRecord("a")
	if err := s.Put(recA); err != nil {
		t.Fatal(err)
	}
	// Rename a's file to x's natural slot on disk and in the index.
	aFile := s.index["a"].File
	xFile := filenameFor(KeyHash("x"), 0)
	if err := os.Rename(filepath.Join(dir, "objects", aFile), filepath.Join(dir, "objects", xFile)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	e := s.index["a"]
	e.File = xFile
	s.index["a"] = e
	s.mu.Unlock()

	if err := s.Put(testRecord("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.index["x"].File; got != filenameFor(KeyHash("x"), 1) {
		t.Fatalf("colliding key landed on %s, want suffix slot", got)
	}
	ra, ok, _ := s.Get("a")
	rx, ok2, _ := s.Get("x")
	if !ok || !ok2 || ra.Key != "a" || rx.Key != "x" {
		t.Fatalf("collision aliased records: %v %v", ra, rx)
	}
}

// TestFileStoreConcurrent hammers one store from many goroutines (run
// under -race).
func TestFileStoreConcurrent(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("k%d", i%5)
				switch i % 3 {
				case 0:
					_ = s.Put(testRecord(key))
				case 1:
					_, _, _ = s.Get(key)
				default:
					_ = s.Has(key)
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if rec, ok, err := s.Get(key); ok && (err != nil || rec.Key != key) {
			t.Fatalf("Get(%q) inconsistent: %v %v", key, rec, err)
		}
	}
}

func TestMemStore(t *testing.T) {
	m := NewMem(3)
	for i := 0; i < 5; i++ {
		if err := m.Put(testRecord(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := m.Stats(); st.Records != 3 {
		t.Fatalf("bound not enforced: %+v", st)
	}
	// FIFO: oldest two dropped.
	for _, k := range []string{"k0", "k1"} {
		if m.Has(k) {
			t.Fatalf("%s survived the FIFO bound", k)
		}
	}
	if rec, ok, err := m.Get("k4"); !ok || err != nil || rec.Key != "k4" {
		t.Fatalf("Get(k4) = %v %v %v", rec, ok, err)
	}
	if err := m.Delete("k4"); err != nil || m.Has("k4") {
		t.Fatal("delete failed")
	}
}

// asErr is errors.As without importing errors twice in tests.
func asErr[T error](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
