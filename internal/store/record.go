package store

// Record framing. A plan record is a small JSON payload (the wire-form
// plan plus everything needed to rehydrate the live pipeline artifacts
// deterministically) wrapped in a fixed binary envelope:
//
//	offset  size  field
//	0       4     magic "CFPS" (commfree plan store)
//	4       4     format version (little endian)
//	8       4     payload length in bytes
//	12      4     CRC-32 (IEEE) of the payload
//	16      n     payload (JSON)
//
// The envelope makes corruption detectable rather than survivable: a
// torn write, a truncated file, or a flipped bit fails the length or
// CRC check and the record is treated as absent — the plan recompiles
// from source, which is always correct because compilation is a pure
// function of the canonical nest. Decode never trusts the length field
// beyond the actual file size, so a corrupt header cannot force a large
// allocation.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
)

// FormatVersion is the current record format. Readers accept only this
// version; unknown versions are treated as corrupt records (skip, then
// recompile) rather than errors, so a rollback after an upgrade leaves
// the store usable.
const FormatVersion = 1

// magic identifies a plan-store record file.
var magic = [4]byte{'C', 'F', 'P', 'S'}

// headerSize is the fixed envelope prefix length.
const headerSize = 16

// maxPayloadBytes bounds one record's payload (plans carry generated
// SPMD source, so allow plenty; anything larger is corruption).
const maxPayloadBytes = 32 << 20

// Record is one persisted compilation: the content-addressed artifact
// of the pure pipeline. CanonicalSource + Strategy (+ Duplicated) +
// Processors deterministically re-derive the live pipeline artifacts
// (partition result, forall program, assignment) without re-running the
// selector or codegen — the expensive stages whose outputs are carried
// verbatim in Plan.
type Record struct {
	// Key is the cache key ("s=<strategy>|p=<procs>|<canonical>"); the
	// store verifies it on read so a hash collision cannot alias plans.
	Key string `json:"key"`
	// CanonicalSource is the α-normalized program the plan was compiled
	// from; KeyHash(CanonicalSource) is the cluster routing key.
	CanonicalSource string `json:"canonical_source"`
	// Strategy is the partition strategy to re-run on rehydration: one
	// of the four wire names, or "selective" with Duplicated naming the
	// replicated arrays.
	Strategy   string   `json:"strategy"`
	Duplicated []string `json:"duplicated,omitempty"`
	Processors int      `json:"processors"`
	// Plan is the wire-form service plan (ranking, SPMD source, …),
	// carried verbatim so rehydration skips selection and codegen.
	Plan json.RawMessage `json:"plan"`
	// CreatedUnixNS stamps the original compilation.
	CreatedUnixNS int64 `json:"created_unix_ns,omitempty"`
}

// Validate checks the fields a reader depends on.
func (r *Record) Validate() error {
	if r.Key == "" {
		return fmt.Errorf("store: record has empty key")
	}
	if r.CanonicalSource == "" {
		return fmt.Errorf("store: record %q has empty canonical source", r.Key)
	}
	if len(r.Plan) == 0 {
		return fmt.Errorf("store: record %q has empty plan", r.Key)
	}
	return nil
}

// KeyHash is the content address of a record key: FNV-1a 64, rendered
// by filenameFor as the record's file name.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

// Encode renders the record into its framed binary form.
func Encode(r *Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: encode %q: %w", r.Key, err)
	}
	if len(payload) > maxPayloadBytes {
		return nil, fmt.Errorf("store: record %q payload %d bytes exceeds %d", r.Key, len(payload), maxPayloadBytes)
	}
	buf := make([]byte, headerSize+len(payload))
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(payload))
	copy(buf[headerSize:], payload)
	return buf, nil
}

// CorruptError reports an unreadable record; callers treat it as a
// miss (skip + recompile), never as fatal.
type CorruptError struct {
	File   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt record %s: %s", e.File, e.Reason)
}

func corrupt(file, format string, args ...any) error {
	return &CorruptError{File: file, Reason: fmt.Sprintf(format, args...)}
}

// Decode parses a framed record, verifying magic, version, length, and
// CRC. file names the source for error messages only.
func Decode(file string, data []byte) (*Record, error) {
	if len(data) < headerSize {
		return nil, corrupt(file, "truncated header (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != magic {
		return nil, corrupt(file, "bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FormatVersion {
		return nil, corrupt(file, "unsupported format version %d", v)
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	if n > maxPayloadBytes {
		return nil, corrupt(file, "payload length %d exceeds cap", n)
	}
	if int64(len(data)) != int64(headerSize)+int64(n) {
		return nil, corrupt(file, "payload truncated: header says %d bytes, file has %d", n, len(data)-headerSize)
	}
	payload := data[headerSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(data[12:16]); got != want {
		return nil, corrupt(file, "CRC mismatch (got %08x, want %08x)", got, want)
	}
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, corrupt(file, "payload does not parse: %v", err)
	}
	if err := r.Validate(); err != nil {
		return nil, corrupt(file, "invalid record: %v", err)
	}
	return &r, nil
}
