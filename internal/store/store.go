// Package store is the persistent, content-addressed plan store: the
// durable home of compiled allocation plans. The paper's pipeline is a
// pure function — a canonical nest deterministically yields its
// communication-free allocation — so a compiled plan is an immutable
// artifact addressed by the FNV-1a hash of its cache key, and the store
// is a write-once object store rather than a mutable database:
//
//   - one file per record under <dir>/objects/, named by the key hash
//     (collisions get a numeric suffix; the key inside the record is
//     authoritative);
//   - records are CRC-framed (record.go): torn writes, truncation, and
//     bit rot are detected on read and treated as a miss — the plan
//     recompiles from source, which is always correct;
//   - writes are temp-then-rename atomic, so a crash mid-Put leaves
//     either the old state or the new state, never a half record;
//   - <dir>/index.json maps keys to files for O(1) lookup; a missing,
//     stale, or corrupt index is rebuilt by scanning the objects
//     directory, skipping (and counting) unreadable records.
//
// The service layers this under its in-memory LRU as a read-through
// tier: cache eviction demotes a plan to disk instead of discarding it,
// and a restarted node finds its whole compiled corpus warm. The
// cluster layer ships the same records between nodes when a membership
// epoch moves a key's home, so a rebalance migrates plans instead of
// recompiling them.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the plan-store contract shared by the file-backed
// implementation and the in-memory one (Mem). All methods are safe for
// concurrent use.
type Store interface {
	// Put persists the record (overwriting any previous record with the
	// same key).
	Put(r *Record) error
	// Get returns the record for the key. ok=false with a nil error is
	// a plain miss; a non-nil error means the record existed but could
	// not be read (corruption — also reported as a miss, ok=false).
	Get(key string) (rec *Record, ok bool, err error)
	// Has reports whether the key is present without reading the body.
	Has(key string) bool
	// Keys returns the stored keys, sorted.
	Keys() []string
	// Delete removes the record (absent keys are a no-op).
	Delete(key string) error
	// Stats snapshots the counters.
	Stats() Stats
	// Close flushes and releases the store.
	Close() error
}

// Stats is the observable state of a store.
type Stats struct {
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
	Puts    int64 `json:"puts"`
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Deletes int64 `json:"deletes"`
	// CorruptSkipped counts records dropped for failing the frame
	// checks (at open-scan or read time); IndexRebuilds counts full
	// directory scans forced by a missing or unreadable index.
	CorruptSkipped int64 `json:"corrupt_skipped"`
	IndexRebuilds  int64 `json:"index_rebuilds"`
	// TornWrites counts writes the fault hook truncated (tests and
	// chaos schedules only).
	TornWrites int64 `json:"torn_writes"`
}

// Options tunes a FileStore.
type Options struct {
	// TornWrite is the deterministic fault hook (chaos schedules wire
	// Schedule.TornWrite here): given the write sequence number and the
	// encoded size, it returns how many bytes actually reach the file
	// and whether the write is torn. Nil means writes are whole.
	TornWrite func(seq int64, size int) (n int, torn bool)
}

// indexVersion is the index.json format version.
const indexVersion = 1

// indexEntry locates one record.
type indexEntry struct {
	Key   string `json:"key"`
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
}

// indexDoc is the on-disk index shape.
type indexDoc struct {
	Version int          `json:"version"`
	Records []indexEntry `json:"records"`
}

// TornWriteError is returned by Put when the fault hook tore the
// write: the record on disk is truncated (and will fail its CRC), the
// in-memory index does not trust it, and the caller should treat the
// plan as not persisted.
type TornWriteError struct {
	Key  string
	File string
}

func (e *TornWriteError) Error() string {
	return fmt.Sprintf("store: torn write of %q (%s)", e.Key, e.File)
}

// FileStore is the disk-backed Store.
type FileStore struct {
	dir     string
	objects string
	opts    Options

	mu       sync.Mutex
	index    map[string]indexEntry
	writeSeq int64
	stats    Stats
}

// Open opens (creating if needed) the store rooted at dir. A missing or
// unreadable index triggers a full objects scan; corrupt records found
// by the scan are skipped and counted, never fatal.
func Open(dir string, opts Options) (*FileStore, error) {
	s := &FileStore{
		dir:     dir,
		objects: filepath.Join(dir, "objects"),
		opts:    opts,
		index:   map[string]indexEntry{},
	}
	if err := os.MkdirAll(s.objects, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if err := s.loadIndex(); err != nil {
		// The index is a cache of the objects directory: rebuild it
		// rather than failing the open.
		s.rebuildIndex()
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

func (s *FileStore) indexPath() string { return filepath.Join(s.dir, "index.json") }

// loadIndex reads index.json and verifies every listed file exists with
// the recorded size (a cheap staleness check; content is CRC-verified
// lazily on Get). Any inconsistency returns an error so the caller
// falls back to a scan.
func (s *FileStore) loadIndex() error {
	data, err := os.ReadFile(s.indexPath())
	if err != nil {
		return err
	}
	var doc indexDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("store: index does not parse: %w", err)
	}
	if doc.Version != indexVersion {
		return fmt.Errorf("store: index version %d, want %d", doc.Version, indexVersion)
	}
	idx := make(map[string]indexEntry, len(doc.Records))
	var bytes int64
	for _, e := range doc.Records {
		if e.Key == "" || e.File == "" || strings.Contains(e.File, string(os.PathSeparator)) {
			return fmt.Errorf("store: index entry %+v is malformed", e)
		}
		fi, err := os.Stat(filepath.Join(s.objects, e.File))
		if err != nil || fi.Size() != e.Bytes {
			return fmt.Errorf("store: index entry %q is stale", e.Key)
		}
		idx[e.Key] = e
		bytes += e.Bytes
	}
	s.mu.Lock()
	s.index = idx
	s.stats.Records = int64(len(idx))
	s.stats.Bytes = bytes
	s.mu.Unlock()
	return nil
}

// rebuildIndex scans the objects directory and rebuilds the index
// from the records themselves (the in-file key is authoritative),
// skipping and counting corrupt records. Called with s.mu NOT held.
func (s *FileStore) rebuildIndex() {
	entries, err := os.ReadDir(s.objects)
	idx := map[string]indexEntry{}
	var bytes, skipped int64
	if err == nil {
		for _, de := range entries {
			name := de.Name()
			if de.IsDir() || !strings.HasSuffix(name, recSuffix) {
				continue
			}
			data, err := os.ReadFile(filepath.Join(s.objects, name))
			if err != nil {
				skipped++
				continue
			}
			rec, err := Decode(name, data)
			if err != nil {
				skipped++
				continue
			}
			idx[rec.Key] = indexEntry{Key: rec.Key, File: name, Bytes: int64(len(data))}
			bytes += int64(len(data))
		}
	}
	s.mu.Lock()
	s.index = idx
	s.stats.Records = int64(len(idx))
	s.stats.Bytes = bytes
	s.stats.CorruptSkipped += skipped
	s.stats.IndexRebuilds++
	s.mu.Unlock()
	_ = s.saveIndex()
}

// RebuildIndex forces a full scan (recovery hook for tests and
// operators); returns how many records survived.
func (s *FileStore) RebuildIndex() int {
	s.rebuildIndex()
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// saveIndex writes index.json atomically (temp + rename).
func (s *FileStore) saveIndex() error {
	s.mu.Lock()
	doc := indexDoc{Version: indexVersion, Records: make([]indexEntry, 0, len(s.index))}
	for _, e := range s.index {
		doc.Records = append(doc.Records, e)
	}
	s.mu.Unlock()
	sort.Slice(doc.Records, func(i, j int) bool { return doc.Records[i].Key < doc.Records[j].Key })
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	return atomicWrite(s.indexPath(), data)
}

// atomicWrite writes data to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// recSuffix is the record file extension.
const recSuffix = ".rec"

// filenameFor renders the content address, disambiguating hash
// collisions with a numeric suffix chosen under the lock.
func filenameFor(hash uint64, n int) string {
	if n == 0 {
		return fmt.Sprintf("%016x%s", hash, recSuffix)
	}
	return fmt.Sprintf("%016x-%d%s", hash, n, recSuffix)
}

// fileFor picks the file name for a key: the existing index entry if
// the key is already stored, else the first free collision slot.
// Called with s.mu held.
func (s *FileStore) fileFor(key string) string {
	if e, ok := s.index[key]; ok {
		return e.File
	}
	h := KeyHash(key)
	taken := map[string]bool{}
	for _, e := range s.index {
		taken[e.File] = true
	}
	for n := 0; ; n++ {
		name := filenameFor(h, n)
		if !taken[name] {
			return name
		}
	}
}

// Put persists the record atomically and updates the index. A torn
// write (fault hook) leaves a CRC-detectably truncated file behind,
// still updates the index — modeling an index write that outlived the
// record's durability — and returns *TornWriteError; the next Get
// self-heals by dropping the entry.
func (s *FileStore) Put(r *Record) error {
	data, err := Encode(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Puts++
	s.writeSeq++
	seq := s.writeSeq
	name := s.fileFor(r.Key)
	s.mu.Unlock()

	write := data
	torn := false
	if s.opts.TornWrite != nil {
		if n, t := s.opts.TornWrite(seq, len(data)); t {
			if n < 0 {
				n = 0
			}
			if n > len(data) {
				n = len(data)
			}
			write = data[:n]
			torn = true
		}
	}
	if err := atomicWrite(filepath.Join(s.objects, name), write); err != nil {
		return fmt.Errorf("store: put %q: %w", r.Key, err)
	}
	s.mu.Lock()
	old, had := s.index[r.Key]
	s.index[r.Key] = indexEntry{Key: r.Key, File: name, Bytes: int64(len(write))}
	if had {
		s.stats.Bytes -= old.Bytes
	} else {
		s.stats.Records++
	}
	s.stats.Bytes += int64(len(write))
	if torn {
		s.stats.TornWrites++
	}
	s.mu.Unlock()
	if err := s.saveIndex(); err != nil {
		return fmt.Errorf("store: put %q: index: %w", r.Key, err)
	}
	if torn {
		return &TornWriteError{Key: r.Key, File: name}
	}
	return nil
}

// Get reads and verifies the record. Corruption drops the entry from
// the index (self-heal) and reports (nil, false, *CorruptError).
func (s *FileStore) Get(key string) (*Record, bool, error) {
	s.mu.Lock()
	s.stats.Gets++
	e, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false, nil
	}
	data, err := os.ReadFile(filepath.Join(s.objects, e.File))
	var rec *Record
	if err == nil {
		rec, err = Decode(e.File, data)
	}
	if err == nil && rec.Key != key {
		err = corrupt(e.File, "record key %q does not match index key %q", rec.Key, key)
	}
	if err != nil {
		s.dropEntry(key, e.File)
		s.count(func(st *Stats) { st.Misses++; st.CorruptSkipped++ })
		return nil, false, err
	}
	s.count(func(st *Stats) { st.Hits++ })
	return rec, true, nil
}

// Has reports index presence (content is verified on Get).
func (s *FileStore) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns the indexed keys, sorted.
func (s *FileStore) Keys() []string {
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Delete removes the record and its index entry.
func (s *FileStore) Delete(key string) error {
	s.mu.Lock()
	e, ok := s.index[key]
	if ok {
		delete(s.index, key)
		s.stats.Records--
		s.stats.Bytes -= e.Bytes
		s.stats.Deletes++
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if err := os.Remove(filepath.Join(s.objects, e.File)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return s.saveIndex()
}

// dropEntry removes a corrupt record's index entry and file.
func (s *FileStore) dropEntry(key, file string) {
	s.mu.Lock()
	if e, ok := s.index[key]; ok && e.File == file {
		delete(s.index, key)
		s.stats.Records--
		s.stats.Bytes -= e.Bytes
	}
	s.mu.Unlock()
	_ = os.Remove(filepath.Join(s.objects, file))
	_ = s.saveIndex()
}

func (s *FileStore) count(fn func(*Stats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

// Stats snapshots the counters.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close flushes the index. The store holds no open files between
// operations, so Close is cheap and idempotent.
func (s *FileStore) Close() error { return s.saveIndex() }
