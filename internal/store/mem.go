package store

// Mem is the in-memory Store: the same contract as FileStore with no
// disk. It backs two places a durable directory is wrong or overkill:
// in-process cluster fleets (conformance and tests migrate plans
// between nodes through it) and services that never configured a store
// but receive migrated records anyway. Bounded FIFO so an unbounded
// migration stream cannot grow it without limit — dropped records just
// recompile on demand.

import (
	"sort"
	"sync"
)

// DefaultMemRecords bounds a Mem store when the caller passes 0.
const DefaultMemRecords = 4096

// Mem is a bounded in-memory Store.
type Mem struct {
	mu    sync.Mutex
	max   int
	recs  map[string]*Record
	order []string // insertion order for FIFO bound
	stats Stats
}

// NewMem builds an in-memory store bounded to max records (0 =
// DefaultMemRecords).
func NewMem(max int) *Mem {
	if max <= 0 {
		max = DefaultMemRecords
	}
	return &Mem{max: max, recs: map[string]*Record{}}
}

// Put stores the record, dropping the oldest once the bound is hit.
func (m *Mem) Put(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Puts++
	if _, ok := m.recs[r.Key]; !ok {
		m.order = append(m.order, r.Key)
		m.stats.Records++
		for len(m.order) > m.max {
			oldest := m.order[0]
			m.order = m.order[1:]
			delete(m.recs, oldest)
			m.stats.Records--
		}
	}
	m.recs[r.Key] = r
	return nil
}

// Get returns the record for the key.
func (m *Mem) Get(key string) (*Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Gets++
	r, ok := m.recs[key]
	if !ok {
		m.stats.Misses++
		return nil, false, nil
	}
	m.stats.Hits++
	return r, true, nil
}

// Has reports presence.
func (m *Mem) Has(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.recs[key]
	return ok
}

// Keys returns the stored keys, sorted.
func (m *Mem) Keys() []string {
	m.mu.Lock()
	keys := make([]string, 0, len(m.recs))
	for k := range m.recs {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Delete removes the record.
func (m *Mem) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.recs[key]; ok {
		delete(m.recs, key)
		m.stats.Records--
		m.stats.Deletes++
		for i, k := range m.order {
			if k == key {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
	}
	return nil
}

// Stats snapshots the counters.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Close is a no-op.
func (m *Mem) Close() error { return nil }
