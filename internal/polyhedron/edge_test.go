package polyhedron

import (
	"strings"
	"testing"

	"commfree/internal/rational"
)

func TestCloneIndependence(t *testing.T) {
	s := NewSystem(2)
	s.AddLEInts([]int64{1, 0}, 5)
	c := s.Clone()
	c.AddLEInts([]int64{0, 1}, 3)
	if len(s.Ineqs) != 1 || len(c.Ineqs) != 2 {
		t.Errorf("clone not independent: %d vs %d", len(s.Ineqs), len(c.Ineqs))
	}
	// Mutating a clone's coefficients must not touch the original.
	c.Ineqs[0].Coeffs[0] = rational.FromInt(99)
	if s.Ineqs[0].Coeffs[0].Equal(rational.FromInt(99)) {
		t.Error("clone shares coefficient storage")
	}
}

func TestStringRendering(t *testing.T) {
	s := NewSystem(2)
	s.AddLEInts([]int64{2, -1}, 7)
	s.AddGEInts([]int64{0, 1}, 1)
	out := s.String()
	if !strings.Contains(out, "≤") {
		t.Errorf("rendering = %q", out)
	}
	var q Ineq
	q.Coeffs = []rational.Rat{rational.Zero, rational.Zero}
	q.Bound = rational.FromInt(3)
	if got := q.String(); !strings.Contains(got, "0 ≤ 3") {
		t.Errorf("zero-row rendering = %q", got)
	}
}

func TestContradictionSurvivesDedup(t *testing.T) {
	// 0 ≤ -1 (after substitution) must be kept so emptiness is visible.
	s := NewSystem(1)
	s.AddLEInts([]int64{1}, 2)
	s.AddGEInts([]int64{1}, 5)
	e := s.Eliminate(0)
	lo, hi, _, _, empty := e.BoundsOn(0)
	_ = lo
	_ = hi
	if !empty {
		// Eliminate produced 0 ≤ -3; BoundsOn must flag it.
		t.Error("contradiction lost during elimination")
	}
}

func TestNegativeSystemSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSystem(-1) did not panic")
		}
	}()
	NewSystem(-1)
}

func TestSatisfiesLengthPanics(t *testing.T) {
	s := NewSystem(2)
	defer func() {
		if recover() == nil {
			t.Error("wrong point length did not panic")
		}
	}()
	s.Satisfies([]int64{1})
}

func TestEliminateOutOfRangePanics(t *testing.T) {
	s := NewSystem(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range eliminate did not panic")
		}
	}()
	s.Eliminate(5)
}

func TestBoundsOnMixedConstraintsIgnored(t *testing.T) {
	// BoundsOn only reads single-variable rows; a mixed row is skipped.
	s := NewSystem(2)
	s.AddLEInts([]int64{1, 1}, 4) // mixed: ignored by BoundsOn
	s.AddLEInts([]int64{1, 0}, 9)
	_, hi, _, hasHi, _ := s.BoundsOn(0)
	if !hasHi || hi.Floor() != 9 {
		t.Errorf("hi = %v (hasHi=%v), want 9 from the pure row", hi, hasHi)
	}
}

func TestEnumerationSingleVariable(t *testing.T) {
	s := NewSystem(1)
	s.AddGEInts([]int64{2}, 3) // 2x ≥ 3 → x ≥ 2 over the integers
	s.AddLEInts([]int64{1}, 4)
	pts, err := s.EnumerateIntegerPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[0][0] != 2 || pts[2][0] != 4 {
		t.Errorf("points = %v, want [2],[3],[4]", pts)
	}
}
