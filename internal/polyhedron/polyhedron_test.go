package polyhedron

import (
	"math/rand"
	"testing"

	"commfree/internal/rational"
)

// box adds lo ≤ x_k ≤ hi for each variable.
func box(s *System, lo, hi []int64) {
	n := s.NumVars
	for k := 0; k < n; k++ {
		unit := make([]int64, n)
		unit[k] = 1
		s.AddLEInts(unit, hi[k])
		s.AddGEInts(unit, lo[k])
	}
}

func TestEnumerateBox(t *testing.T) {
	s := NewSystem(2)
	box(s, []int64{1, 1}, []int64{3, 2})
	pts, err := s.EnumerateIntegerPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6: %v", len(pts), pts)
	}
	// Lexicographic order.
	if pts[0][0] != 1 || pts[0][1] != 1 || pts[5][0] != 3 || pts[5][1] != 2 {
		t.Errorf("order wrong: %v", pts)
	}
}

func TestEnumerateTriangle(t *testing.T) {
	// 1 ≤ x ≤ 4, 1 ≤ y ≤ 4, x + y ≤ 4 → 6 points.
	s := NewSystem(2)
	box(s, []int64{1, 1}, []int64{4, 4})
	s.AddLEInts([]int64{1, 1}, 4)
	pts, err := s.EnumerateIntegerPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6: %v", len(pts), pts)
	}
	for _, p := range pts {
		if p[0]+p[1] > 4 {
			t.Errorf("point %v violates x+y≤4", p)
		}
	}
}

func TestEmptySystem(t *testing.T) {
	// x ≥ 3 and x ≤ 2: empty.
	s := NewSystem(1)
	s.AddGEInts([]int64{1}, 3)
	s.AddLEInts([]int64{1}, 2)
	ok, err := s.HasIntegerPoint()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("empty system has point")
	}
}

func TestIntegerGap(t *testing.T) {
	// 1/3 ≤ x ≤ 2/3 has rational points but no integer ones.
	s := NewSystem(1)
	s.AddLE([]rational.Rat{rational.FromInt(3)}, rational.FromInt(2)) // 3x ≤ 2
	s.AddGE([]rational.Rat{rational.FromInt(3)}, rational.FromInt(1)) // 3x ≥ 1
	ok, err := s.HasIntegerPoint()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("gap interval reported integer point")
	}
}

func TestEqualityConstraint(t *testing.T) {
	// x + y = 3, 0 ≤ x,y ≤ 3 → 4 points.
	s := NewSystem(2)
	box(s, []int64{0, 0}, []int64{3, 3})
	s.AddEqInts([]int64{1, 1}, 3)
	pts, err := s.EnumerateIntegerPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4: %v", len(pts), pts)
	}
	for _, p := range pts {
		if p[0]+p[1] != 3 {
			t.Errorf("point %v violates x+y=3", p)
		}
	}
}

func TestUnboundedDetected(t *testing.T) {
	s := NewSystem(2)
	s.AddGEInts([]int64{1, 0}, 0)
	s.AddLEInts([]int64{1, 0}, 5)
	// y unbounded.
	if _, err := s.HasIntegerPoint(); err == nil {
		t.Error("unbounded system not detected")
	}
}

func TestZeroVariables(t *testing.T) {
	s := NewSystem(0)
	ok, err := s.HasIntegerPoint()
	if err != nil || !ok {
		t.Errorf("trivial system: ok=%v err=%v", ok, err)
	}
}

func TestSubstituteAndBounds(t *testing.T) {
	// x + y ≤ 5, y ≥ 1; fix x = 3 → 1 ≤ y ≤ 2.
	s := NewSystem(2)
	s.AddLEInts([]int64{1, 1}, 5)
	s.AddGEInts([]int64{0, 1}, 1)
	sub := s.Substitute(0, rational.FromInt(3))
	lo, hi, hasLo, hasHi, empty := sub.BoundsOn(1)
	if empty || !hasLo || !hasHi {
		t.Fatalf("bounds: lo=%v hi=%v hasLo=%v hasHi=%v empty=%v", lo, hi, hasLo, hasHi, empty)
	}
	if lo.Ceil() != 1 || hi.Floor() != 2 {
		t.Errorf("y ∈ [%s, %s], want [1,2]", lo, hi)
	}
}

func TestEliminateProjection(t *testing.T) {
	// Triangle x+y ≤ 4, x,y ≥ 1. Eliminating y gives x ≤ 3, x ≥ 1.
	s := NewSystem(2)
	s.AddLEInts([]int64{1, 1}, 4)
	s.AddGEInts([]int64{1, 0}, 1)
	s.AddGEInts([]int64{0, 1}, 1)
	e := s.Eliminate(1)
	lo, hi, hasLo, hasHi, empty := e.BoundsOn(0)
	if empty || !hasLo || !hasHi {
		t.Fatalf("projection bounds missing")
	}
	if lo.Ceil() != 1 || hi.Floor() != 3 {
		t.Errorf("x ∈ [%s, %s], want [1,3]", lo, hi)
	}
}

func TestSatisfies(t *testing.T) {
	s := NewSystem(2)
	box(s, []int64{1, 1}, []int64{4, 4})
	s.AddLEInts([]int64{1, 1}, 4)
	if !s.Satisfies([]int64{1, 3}) {
		t.Error("(1,3) should satisfy")
	}
	if s.Satisfies([]int64{4, 4}) {
		t.Error("(4,4) should violate x+y≤4")
	}
}

func TestL4TransformedBoundsShape(t *testing.T) {
	// The Section-IV worked example: variables (i1', i2', i1) with
	// i1' = i1+i2, i2' = -i1+i3, all of i1,i2,i3 in [1,4].
	// In terms of (v1,v2,v3) = (i1', i2', i1):
	//   i1 = v3, i2 = v1 - v3, i3 = v2 + v3.
	s := NewSystem(3)
	add := func(coeffs []int64) {
		s.AddGEInts(coeffs, 1)
		s.AddLEInts(coeffs, 4)
	}
	add([]int64{0, 0, 1})  // i1
	add([]int64{1, 0, -1}) // i2
	add([]int64{0, 1, 1})  // i3
	pts, err := s.EnumerateIntegerPoints()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 64 {
		t.Fatalf("points = %d, want 64", len(pts))
	}
	// Outer bounds must match the paper: i1' from 2 to 8,
	// i2' from max(-3, -i1'+2) to min(3, -i1'+8).
	seen := map[int64]bool{}
	for _, p := range pts {
		seen[p[0]] = true
		loB := maxI(-3, -p[0]+2)
		hiB := minI(3, -p[0]+8)
		if p[1] < loB || p[1] > hiB {
			t.Errorf("i2'=%d outside paper bounds [%d,%d] at i1'=%d", p[1], loB, hiB, p[0])
		}
	}
	for v := int64(2); v <= 8; v++ {
		if !seen[v] {
			t.Errorf("i1' = %d missing", v)
		}
	}
	if seen[1] || seen[9] {
		t.Error("i1' out of paper range present")
	}
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func TestPropEnumerationMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rnd.Intn(2)
		s := NewSystem(n)
		lo := make([]int64, n)
		hi := make([]int64, n)
		for k := 0; k < n; k++ {
			lo[k] = rnd.Int63n(5) - 2
			hi[k] = lo[k] + rnd.Int63n(5)
		}
		box(s, lo, hi)
		// Add a couple of random cutting planes.
		for c := 0; c < 2; c++ {
			coeffs := make([]int64, n)
			for k := range coeffs {
				coeffs[k] = rnd.Int63n(5) - 2
			}
			s.AddLEInts(coeffs, rnd.Int63n(9)-2)
		}
		got, err := s.EnumerateIntegerPoints()
		if err != nil {
			t.Fatal(err)
		}
		// Brute force over the box.
		var want [][]int64
		var walk func(k int, p []int64)
		walk = func(k int, p []int64) {
			if k == n {
				if s.Satisfies(p) {
					cp := make([]int64, n)
					copy(cp, p)
					want = append(want, cp)
				}
				return
			}
			for v := lo[k]; v <= hi[k]; v++ {
				p[k] = v
				walk(k+1, p)
			}
		}
		walk(0, make([]int64, n))
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d points, brute force %d\nsystem:\n%s", trial, len(got), len(want), s)
		}
		for i := range got {
			for k := 0; k < n; k++ {
				if got[i][k] != want[i][k] {
					t.Fatalf("trial %d: point %d mismatch %v vs %v", trial, i, got[i], want[i])
				}
			}
		}
	}
}
