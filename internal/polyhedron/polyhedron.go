// Package polyhedron implements systems of rational linear inequalities
// and exact Fourier–Motzkin elimination.
//
// Two consumers drive the design. The dependence analyzer asks whether an
// integer point exists in a small polyhedron (a solution coset intersected
// with the iteration-difference box). The program transformation of
// Section IV needs, for each new loop variable, affine lower/upper bounds
// in terms of the enclosing variables — exactly what eliminating the inner
// variables with Fourier–Motzkin produces.
package polyhedron

import (
	"fmt"
	"strings"

	"commfree/internal/rational"
)

// Ineq is a single inequality  Σ Coeffs[j]·x_j ≤ Bound.
type Ineq struct {
	Coeffs []rational.Rat
	Bound  rational.Rat
}

// String renders the inequality for diagnostics.
func (q Ineq) String() string {
	var parts []string
	for j, c := range q.Coeffs {
		if c.IsZero() {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s·x%d", c, j+1))
	}
	lhs := "0"
	if len(parts) > 0 {
		lhs = strings.Join(parts, " + ")
	}
	return lhs + " ≤ " + q.Bound.String()
}

// System is a conjunction of inequalities over NumVars variables.
type System struct {
	NumVars int
	Ineqs   []Ineq
}

// NewSystem returns an empty system over n variables.
func NewSystem(n int) *System {
	if n < 0 {
		panic(fmt.Errorf("polyhedron: negative variable count %d", n))
	}
	return &System{NumVars: n}
}

// Clone deep-copies the system.
func (s *System) Clone() *System {
	c := NewSystem(s.NumVars)
	c.Ineqs = make([]Ineq, len(s.Ineqs))
	for i, q := range s.Ineqs {
		coeffs := make([]rational.Rat, len(q.Coeffs))
		copy(coeffs, q.Coeffs)
		c.Ineqs[i] = Ineq{Coeffs: coeffs, Bound: q.Bound}
	}
	return c
}

func (s *System) checkLen(coeffs []rational.Rat) {
	if len(coeffs) != s.NumVars {
		panic(fmt.Errorf("polyhedron: %d coefficients for %d variables", len(coeffs), s.NumVars))
	}
}

// AddLE adds Σ coeffs·x ≤ bound.
func (s *System) AddLE(coeffs []rational.Rat, bound rational.Rat) {
	s.checkLen(coeffs)
	cp := make([]rational.Rat, len(coeffs))
	copy(cp, coeffs)
	s.Ineqs = append(s.Ineqs, Ineq{Coeffs: cp, Bound: bound})
}

// AddGE adds Σ coeffs·x ≥ bound (stored as the negated ≤ form).
func (s *System) AddGE(coeffs []rational.Rat, bound rational.Rat) {
	neg := make([]rational.Rat, len(coeffs))
	for i, c := range coeffs {
		neg[i] = c.Neg()
	}
	s.AddLE(neg, bound.Neg())
}

// AddEq adds Σ coeffs·x = bound as a ≤/≥ pair.
func (s *System) AddEq(coeffs []rational.Rat, bound rational.Rat) {
	s.AddLE(coeffs, bound)
	s.AddGE(coeffs, bound)
}

// AddLEInts is AddLE with integer data.
func (s *System) AddLEInts(coeffs []int64, bound int64) {
	s.AddLE(ratVec(coeffs), rational.FromInt(bound))
}

// AddGEInts is AddGE with integer data.
func (s *System) AddGEInts(coeffs []int64, bound int64) {
	s.AddGE(ratVec(coeffs), rational.FromInt(bound))
}

// AddEqInts is AddEq with integer data.
func (s *System) AddEqInts(coeffs []int64, bound int64) {
	s.AddEq(ratVec(coeffs), rational.FromInt(bound))
}

func ratVec(v []int64) []rational.Rat {
	out := make([]rational.Rat, len(v))
	for i, x := range v {
		out[i] = rational.FromInt(x)
	}
	return out
}

// Eliminate removes variable k (0-based) by Fourier–Motzkin, returning a
// system over the same variable indexing whose inequalities have zero
// coefficient at k. The projection is exact over the rationals.
func (s *System) Eliminate(k int) *System {
	if k < 0 || k >= s.NumVars {
		panic(fmt.Errorf("polyhedron: eliminate variable %d of %d", k, s.NumVars))
	}
	out := NewSystem(s.NumVars)
	var lowers, uppers []Ineq // constraints giving x_k ≥ …, x_k ≤ …
	for _, q := range s.Ineqs {
		c := q.Coeffs[k]
		switch {
		case c.IsZero():
			out.Ineqs = append(out.Ineqs, q)
		case c.Sign() > 0:
			uppers = append(uppers, q)
		default:
			lowers = append(lowers, q)
		}
	}
	// Pair each lower with each upper: from  a·x ≤ b (a_k>0) and
	// a'·x ≤ b' (a'_k<0) derive  (a/a_k − a'/a'_k)·x ≤ b/a_k − b'/a'_k,
	// scaled positive.
	for _, lo := range lowers {
		for _, hi := range uppers {
			cl := lo.Coeffs[k].Neg() // positive
			ch := hi.Coeffs[k]       // positive
			coeffs := make([]rational.Rat, s.NumVars)
			for j := 0; j < s.NumVars; j++ {
				// ch·lo + cl·hi eliminates x_k.
				coeffs[j] = ch.Mul(lo.Coeffs[j]).Add(cl.Mul(hi.Coeffs[j]))
			}
			bound := ch.Mul(lo.Bound).Add(cl.Mul(hi.Bound))
			coeffs[k] = rational.Zero
			out.Ineqs = append(out.Ineqs, Ineq{Coeffs: coeffs, Bound: bound})
		}
	}
	out.dedup()
	return out
}

// dedup drops duplicate and trivially-true inequalities and detects
// trivially-false ones (kept so IsEmpty sees them).
func (s *System) dedup() {
	seen := map[string]bool{}
	var kept []Ineq
	for _, q := range s.Ineqs {
		allZero := true
		for _, c := range q.Coeffs {
			if !c.IsZero() {
				allZero = false
				break
			}
		}
		if allZero {
			if q.Bound.Sign() < 0 {
				// 0 ≤ negative: contradiction — keep one witness.
				kept = append(kept, q)
			}
			continue // 0 ≤ nonneg: trivially true
		}
		key := q.String()
		if !seen[key] {
			seen[key] = true
			kept = append(kept, q)
		}
	}
	s.Ineqs = kept
}

// BoundsOn returns the tightest rational interval for variable k implied
// by inequalities whose only nonzero coefficient is at k, after the caller
// has substituted values for all other variables via Substitute. hasLo and
// hasHi report whether each side is bounded. If an inequality is
// contradictory (0 ≤ neg) the interval is reported empty via empty=true.
func (s *System) BoundsOn(k int) (lo, hi rational.Rat, hasLo, hasHi, empty bool) {
	for _, q := range s.Ineqs {
		c := q.Coeffs[k]
		others := false
		for j, cj := range q.Coeffs {
			if j != k && !cj.IsZero() {
				others = true
				break
			}
		}
		if others {
			continue
		}
		if c.IsZero() {
			if q.Bound.Sign() < 0 {
				empty = true
			}
			continue
		}
		v := q.Bound.Div(c)
		if c.Sign() > 0 {
			if !hasHi || v.Less(hi) {
				hi, hasHi = v, true
			}
		} else {
			if !hasLo || lo.Less(v) {
				lo, hasLo = v, true
			}
		}
	}
	if hasLo && hasHi && hi.Less(lo) {
		empty = true
	}
	return lo, hi, hasLo, hasHi, empty
}

// Substitute fixes variable k to value v, folding it into the bounds.
func (s *System) Substitute(k int, v rational.Rat) *System {
	out := NewSystem(s.NumVars)
	for _, q := range s.Ineqs {
		coeffs := make([]rational.Rat, s.NumVars)
		copy(coeffs, q.Coeffs)
		bound := q.Bound.Sub(coeffs[k].Mul(v))
		coeffs[k] = rational.Zero
		out.Ineqs = append(out.Ineqs, Ineq{Coeffs: coeffs, Bound: bound})
	}
	out.dedup()
	return out
}

// EnumerateIntegerPoints returns every integer point satisfying the
// system, in lexicographic order of (x_1, …, x_n). The system must be
// bounded in every variable; unbounded directions cause an error.
func (s *System) EnumerateIntegerPoints() ([][]int64, error) {
	var out [][]int64
	err := s.walkInteger(func(p []int64) bool {
		cp := make([]int64, len(p))
		copy(cp, p)
		out = append(out, cp)
		return true
	})
	return out, err
}

// HasIntegerPoint reports whether any integer point satisfies the system.
func (s *System) HasIntegerPoint() (bool, error) {
	found := false
	err := s.walkInteger(func([]int64) bool {
		found = true
		return false // stop
	})
	return found, err
}

// walkInteger enumerates integer points, calling visit for each; visit
// returning false stops the walk early.
func (s *System) walkInteger(visit func([]int64) bool) error {
	n := s.NumVars
	if n == 0 {
		// Empty variable set: the system is satisfiable iff no
		// contradictions remain.
		for _, q := range s.Ineqs {
			if q.Bound.Sign() < 0 {
				return nil
			}
		}
		visit(nil)
		return nil
	}
	// Build the elimination tower: tower[k] has variables x_1..x_k free.
	tower := make([]*System, n+1)
	tower[n] = s.Clone()
	for k := n; k > 1; k-- {
		tower[k-1] = tower[k].Eliminate(k - 1)
	}
	point := make([]int64, n)
	var rec func(k int, sys *System) (bool, error)
	rec = func(k int, sys *System) (bool, error) {
		// sys has x_1..x_{k-1} substituted; tower gives constraints with
		// inner vars eliminated. Bound x_k from the (k)-variable layer with
		// the outer substitutions applied.
		layer := tower[k+1]
		cur := layer
		for j := 0; j <= k-1; j++ {
			cur = cur.Substitute(j, rational.FromInt(point[j]))
		}
		lo, hi, hasLo, hasHi, empty := cur.BoundsOn(k)
		if empty {
			return true, nil
		}
		if !hasLo || !hasHi {
			return false, fmt.Errorf("polyhedron: variable x%d unbounded", k+1)
		}
		for v := lo.Ceil(); v <= hi.Floor(); v++ {
			point[k] = v
			if k == n-1 {
				if !visit(point) {
					return false, nil
				}
				continue
			}
			cont, err := rec(k+1, nil)
			if err != nil {
				return false, err
			}
			if !cont {
				return false, nil
			}
		}
		return true, nil
	}
	_, err := rec(0, nil)
	return err
}

// Satisfies reports whether integer point p satisfies every inequality.
func (s *System) Satisfies(p []int64) bool {
	if len(p) != s.NumVars {
		panic(fmt.Errorf("polyhedron: point has %d coords, system %d vars", len(p), s.NumVars))
	}
	for _, q := range s.Ineqs {
		sum := rational.Zero
		for j, c := range q.Coeffs {
			sum = sum.Add(c.Mul(rational.FromInt(p[j])))
		}
		if q.Bound.Less(sum) {
			return false
		}
	}
	return true
}

// String renders the system one inequality per line.
func (s *System) String() string {
	var lines []string
	for _, q := range s.Ineqs {
		lines = append(lines, q.String())
	}
	return strings.Join(lines, "\n")
}
