module commfree

go 1.22
