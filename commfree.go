// Package commfree implements communication-free data allocation for
// parallelizing compilers on distributed-memory multicomputers, after
// Chen & Sheu, "Communication-Free Data Allocation Techniques for
// Parallelizing Compilers on Multicomputers" (ICPP 1993 / IEEE TPDS
// 5(9):924–938, 1994).
//
// Given a normalized nested loop with uniformly generated array
// references, the library:
//
//  1. analyzes the reference pattern of every array (package deps),
//  2. derives a communication-free partitioning space Ψ under one of four
//     strategies — non-duplicate data (Theorem 1), duplicate data
//     (Theorem 2), and their minimal variants after redundant-computation
//     elimination (Theorems 3–4) — in package partition,
//  3. transforms the loop into parallel forall form with exact
//     Fourier–Motzkin bounds (package transform),
//  4. maps blocks cyclically onto a fixed-size processor grid for load
//     balance (package assign), and
//  5. can execute the result on a simulated multicomputer with strictly
//     local memories, proving zero interprocessor communication
//     (packages machine and exec).
//
// The typical entry point is Compile:
//
//	comp, err := commfree.Compile(src, commfree.Duplicate, 16)
//	fmt.Println(comp.Partition.Summary())
//	fmt.Println(comp.Transformed)        // paper-style forall pseudocode
//	rep, err := comp.Execute(commfree.TransputerCost())
package commfree

import (
	"fmt"
	"strings"

	"commfree/internal/assign"
	"commfree/internal/baseline"
	"commfree/internal/chaos"
	"commfree/internal/codegen"
	"commfree/internal/deps"
	"commfree/internal/distplan"
	"commfree/internal/exec"
	"commfree/internal/lang"
	"commfree/internal/layout"
	"commfree/internal/loop"
	"commfree/internal/machine"
	"commfree/internal/mars"
	"commfree/internal/normalize"
	"commfree/internal/obs"
	"commfree/internal/partition"
	"commfree/internal/redundant"
	"commfree/internal/selector"
	"commfree/internal/transform"
)

// Re-exported strategy constants (see partition.Strategy).
const (
	// NonDuplicate keeps exactly one copy of every array element
	// (Theorem 1).
	NonDuplicate = partition.NonDuplicate
	// Duplicate allows replicated array elements; only flow dependences
	// constrain the partition (Theorem 2).
	Duplicate = partition.Duplicate
	// MinimalNonDuplicate applies Theorem 3: non-duplicate partitioning
	// after redundant-computation elimination.
	MinimalNonDuplicate = partition.MinimalNonDuplicate
	// MinimalDuplicate applies Theorem 4.
	MinimalDuplicate = partition.MinimalDuplicate
	// Mars partitions by usage: iterations whose produced values share
	// consumers group into maximal atomic irredundant sets (Ferry et
	// al.), and blocks are the finest flow-closed groups — always at
	// least as parallel as Theorems 1–4, with zero redundant-copy
	// volume. Compute it with PartitionMars (partition.Compute rejects
	// it, like Selective).
	Mars = partition.Mars
)

// Core type aliases — the public names for the library's data model.
type (
	// Strategy selects one of the paper's four partitioning schemes.
	Strategy = partition.Strategy
	// Nest is a normalized n-nested loop with uniformly generated
	// references.
	Nest = loop.Nest
	// Level is one loop level with affine bounds.
	Level = loop.Level
	// Affine is an affine function of the loop indices.
	Affine = loop.Affine
	// Ref is an array reference A[H·ī + c̄].
	Ref = loop.Ref
	// Statement is one assignment in the loop body.
	Statement = loop.Statement
	// PartitionResult is the outcome of the partitioning pipeline.
	PartitionResult = partition.Result
	// Transformed is the forall-form parallel loop of Section IV.
	Transformed = transform.Transformed
	// Assignment is the cyclic mapping of blocks onto processors.
	Assignment = assign.Assignment
	// CostModel is the t_comp/t_start/t_comm machine model.
	CostModel = machine.CostModel
	// ExecutionReport is the result of simulated parallel execution.
	ExecutionReport = exec.Report
	// ChaosStats counts the faults a seeded chaos schedule injected and
	// the retries that absorbed them (ExecutionReport.Chaos).
	ChaosStats = chaos.Stats
	// DependenceAnalysis is the per-array dependence information.
	DependenceAnalysis = deps.Analysis
	// RedundancyResult is the outcome of Section III.C elimination.
	RedundancyResult = redundant.Result
	// HyperplaneResult is the Ramanujam–Sadayappan baseline outcome.
	HyperplaneResult = baseline.Result
)

// ParseProgram parses DSL source containing one or more consecutive loop
// nests. The paper's compilation model treats each nest independently;
// CompileProgram partitions each one.
func ParseProgram(src string) ([]*Nest, error) { return lang.ParseProgram(src) }

// CompileProgram compiles every nest of a multi-loop program under one
// strategy and processor count.
func CompileProgram(src string, strat Strategy, processors int) ([]*Compilation, error) {
	nests, err := ParseProgram(src)
	if err != nil {
		return nil, err
	}
	out := make([]*Compilation, 0, len(nests))
	for i, n := range nests {
		c, err := CompileNest(n, strat, processors)
		if err != nil {
			return nil, fmt.Errorf("commfree: nest %d: %w", i+1, err)
		}
		out = append(out, c)
	}
	return out, nil
}

// FormatLoop renders a nest back into DSL source (parsed nests round-trip
// exactly; hand-built nests get an equivalent rendering).
func FormatLoop(nest *Nest) string { return lang.Format(nest) }

// Parse parses loop DSL source such as
//
//	for i = 1 to 4
//	  for j = 1 to 4
//	    S1: A[2i, j]  = C[i, j] * 7
//	    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
//	  end
//	end
//
// into a validated Nest.
func Parse(src string) (*Nest, error) { return lang.Parse(src) }

// MustParse is Parse that panics on error (for fixtures and examples).
func MustParse(src string) *Nest { return lang.MustParse(src) }

// AffineNest is a structurally valid nest whose references need not be
// uniformly generated and may carry symbolic constants (see ParseAffine).
type AffineNest = lang.AffineNest

// NormalizeResult is the outcome of the normalization pass: the uniform
// concrete nest plus the per-array data relabels applied to reach it.
type NormalizeResult = normalize.Result

// ClassifyError is the typed diagnostic for a nest the normalization
// pass provably cannot rewrite into uniformly generated form: the
// rejection class, the offending reference, and the failed condition.
type ClassifyError = normalize.ClassifyError

// ParseAffine parses DSL source in the widened affine grammar: array
// references need not be uniformly generated (A[2i+1], index
// permutations, per-reference offsets) and subscripts may use symbolic
// constants (A[i+d]). Feed the result to Normalize to obtain a nest the
// partitioning pipeline accepts.
func ParseAffine(src string) (*AffineNest, error) { return lang.ParseAffine(src) }

// Normalize rewrites an affine nest into uniformly generated form where
// a communication-free allocation still exists, or returns a
// *ClassifyError explaining precisely why it cannot. It is the identity
// on nests that already validate.
func Normalize(a *AffineNest) (*NormalizeResult, error) { return normalize.Apply(a) }

// NormalizeSource is ParseAffine followed by Normalize.
func NormalizeSource(src string) (*NormalizeResult, error) { return normalize.Source(src) }

// Analyze runs dependence analysis on a nest.
func Analyze(nest *Nest) (*DependenceAnalysis, error) { return deps.Analyze(nest) }

// Partition computes the communication-free partition of a nest under the
// given strategy (Theorems 1–4).
func Partition(nest *Nest, strat Strategy) (*PartitionResult, error) {
	return partition.Compute(nest, strat)
}

// PartitionSelective duplicates only the named arrays (Section IV's L5′
// duplicates B but not A).
func PartitionSelective(nest *Nest, duplicated map[string]bool) (*PartitionResult, error) {
	return partition.ComputeSelective(nest, duplicated)
}

// PartitionMars computes the usage-based MARS partition: maximal
// atomic irredundant sets over the irredundant dataflow, emitted as
// the fifth strategy through the common PartitionResult shape.
func PartitionMars(nest *Nest) (*PartitionResult, error) {
	return mars.Compute(nest)
}

// EliminateRedundant runs Section III.C redundant-computation elimination.
func EliminateRedundant(nest *Nest) (*RedundancyResult, error) {
	a, err := deps.Analyze(nest)
	if err != nil {
		return nil, err
	}
	return redundant.Eliminate(a)
}

// TransformLoop rewrites a partitioned nest into forall form.
func TransformLoop(res *PartitionResult) (*Transformed, error) {
	return transform.Transform(res.Analysis.Nest, res.Psi)
}

// Hyperplane runs the Ramanujam–Sadayappan baseline partitioner.
func Hyperplane(nest *Nest) (*HyperplaneResult, error) { return baseline.Hyperplane(nest) }

// TransputerCost returns the Transputer-calibrated cost model used for
// the Table I/II reproduction.
func TransputerCost() CostModel { return machine.Transputer() }

// StrategyCandidate is one evaluated allocation alternative.
type StrategyCandidate = selector.Candidate

// SelectStrategy prices every allocation alternative — the four theorems
// plus all selective duplication subsets — on p processors under the cost
// model and returns the cheapest with the full ranking (the paper's
// closing "estimate which duplication is suitable" remark, automated).
func SelectStrategy(nest *Nest, p int, cost CostModel) (StrategyCandidate, []StrategyCandidate, error) {
	return selector.Best(nest, p, cost)
}

// StrategyRanking renders a SelectStrategy ranking.
func StrategyRanking(all []StrategyCandidate) string { return selector.Report(all) }

// Compilation bundles the full pipeline output for one nest.
type Compilation struct {
	Nest        *Nest
	Strategy    Strategy
	Processors  int
	Partition   *PartitionResult
	Transformed *Transformed
	Assignment  *Assignment
}

// Trace is a structured span tree recording one pipeline run: every
// stage (parse, deps, redundant, partition, transform, assign,
// exec_run with per-block children) becomes a timed span. Start one
// with NewTrace, pass it to CompileTraced / Compilation.ExecuteTraced,
// and render it with Trace.Tree() or export it with Trace.Export(). A
// nil *Trace is always legal and free.
type Trace = obs.Trace

// NewTrace starts a named trace.
func NewTrace(name string) *Trace { return obs.New(name) }

// Compile parses, partitions, transforms, and assigns in one call.
func Compile(src string, strat Strategy, processors int) (*Compilation, error) {
	return CompileTraced(src, strat, processors, nil)
}

// CompileTraced is Compile with stage spans recorded into trc. Sources
// are parsed in the affine grammar and normalized first, so non-uniform
// references that the pass can rewrite compile transparently; uniform
// sources flow through byte-identically (the pass is the identity on
// them), and unnormalizable nests fail with a *ClassifyError.
func CompileTraced(src string, strat Strategy, processors int, trc *Trace) (*Compilation, error) {
	psp := trc.Start(0, "parse")
	nres, err := normalize.Source(src)
	if err == nil && !nres.Identity {
		psp.SetInt("normalized", 1)
	}
	psp.End()
	if err != nil {
		return nil, err
	}
	return compileNestTraced(nres.Nest, strat, processors, trc)
}

// CompileNest is Compile for an already-built nest.
func CompileNest(nest *Nest, strat Strategy, processors int) (*Compilation, error) {
	return compileNestTraced(nest, strat, processors, nil)
}

func compileNestTraced(nest *Nest, strat Strategy, processors int, trc *Trace) (*Compilation, error) {
	if processors < 1 {
		return nil, fmt.Errorf("commfree: processors = %d", processors)
	}
	var res *PartitionResult
	var err error
	if strat == partition.Mars {
		res, err = mars.ComputeWithTrace(nest, trc, 0)
	} else {
		res, err = partition.ComputeWithTrace(nest, strat, trc, 0)
	}
	if err != nil {
		return nil, err
	}
	return finishCompilationTraced(nest, res, processors, trc)
}

// CompileCandidate compiles the allocation a SelectStrategy candidate
// describes (including selective duplication subsets).
func CompileCandidate(nest *Nest, cand StrategyCandidate, processors int) (*Compilation, error) {
	if processors < 1 {
		return nil, fmt.Errorf("commfree: processors = %d", processors)
	}
	var res *PartitionResult
	var err error
	switch cand.Strategy {
	case partition.Selective:
		dup := map[string]bool{}
		for _, a := range cand.Duplicated {
			dup[a] = true
		}
		res, err = partition.ComputeSelective(nest, dup)
	case partition.Mars:
		res, err = mars.Compute(nest)
	default:
		res, err = partition.Compute(nest, cand.Strategy)
	}
	if err != nil {
		return nil, err
	}
	return finishCompilation(nest, res, processors)
}

func finishCompilation(nest *Nest, res *PartitionResult, processors int) (*Compilation, error) {
	return finishCompilationTraced(nest, res, processors, nil)
}

func finishCompilationTraced(nest *Nest, res *PartitionResult, processors int, trc *Trace) (*Compilation, error) {
	tsp := trc.Start(0, "transform")
	tr, err := transform.Transform(nest, res.Psi)
	tsp.End()
	if err != nil {
		return nil, err
	}
	asp := trc.Start(0, "assign")
	defer asp.End()
	return &Compilation{
		Nest:        nest,
		Strategy:    res.Strategy,
		Processors:  processors,
		Partition:   res,
		Transformed: tr,
		Assignment:  assign.Assign(tr, processors),
	}, nil
}

// Verify exhaustively checks the compilation's communication-freeness on
// the finite iteration space.
func (c *Compilation) Verify() error { return c.Partition.Verify() }

// Execute runs the compilation on the simulated multicomputer and checks
// nothing crossed between nodes.
func (c *Compilation) Execute(cost CostModel) (*ExecutionReport, error) {
	return c.ExecuteTraced(cost, nil)
}

// ExecuteTraced is Execute with an "exec_run" span whose children are
// the distribution charge and one span per executed block (worker,
// node, block id, iterations, words moved).
func (c *Compilation) ExecuteTraced(cost CostModel, trc *Trace) (*ExecutionReport, error) {
	return c.executeOpts(cost, trc, nil)
}

// ExecuteChaos is ExecuteTraced under a deterministic fault-injection
// schedule derived from seed (see internal/chaos): blocks crash and are
// retried from checkpoints, distribution messages are lost and resent,
// nodes run slow — and the result must still be bit-identical to the
// fault-free run, because blocks have disjoint footprints (or private
// copies) and are therefore independently re-executable. The injected
// faults and retries are reported in ExecutionReport.Chaos.
func (c *Compilation) ExecuteChaos(cost CostModel, trc *Trace, seed int64) (*ExecutionReport, error) {
	return c.executeOpts(cost, trc, chaos.Default(seed))
}

func (c *Compilation) executeOpts(cost CostModel, trc *Trace, inj *chaos.Injector) (*ExecutionReport, error) {
	rsp := trc.Start(0, "exec_run")
	rep, err := exec.ParallelOpts(c.Partition, c.Processors, cost,
		exec.Options{Trace: trc, Parent: rsp.ID(), Chaos: inj})
	rsp.End()
	if err != nil {
		return nil, err
	}
	if n := rep.Machine.InterNodeMessages(); n != 0 {
		return rep, fmt.Errorf("commfree: %d inter-node messages during execution", n)
	}
	return rep, nil
}

// SequentialReference executes the nest sequentially with the shared
// deterministic initial values (for comparing against Execute).
func SequentialReference(nest *Nest) map[string]float64 {
	return exec.Sequential(nest, nil)
}

// GenerateGo emits a standalone, runnable Go program implementing the
// compiled loop in the paper's SPMD form: cyclically strided forall
// loops, extended statements, and the original body — the compiler's
// code-generation back end. The program's main() prints the sequential
// result state and per-processor iteration counts for external diffing.
func (c *Compilation) GenerateGo() (string, error) {
	opts := codegen.Options{}
	if c.Strategy == partition.Mars {
		// MARS blocks are flow closures, not grid cosets: emit the
		// table-driven SPMD form instead of strided loops.
		opts.PEIterations = codegen.PETable(c.Partition, c.Transformed, c.Assignment)
	}
	return codegen.Generate(c.Transformed, c.Assignment, opts)
}

// DistributionPlan is the host's derived distribution schedule: element
// groups with identical consumer sets mapped to unicast, multicast, or
// broadcast (Section IV's manual primitive choice, automated).
type DistributionPlan = distplan.Plan

// ExecutePlanned is Execute with plan-based initial-data distribution:
// shared element groups are multicast/broadcast instead of sent per node.
func (c *Compilation) ExecutePlanned(cost CostModel) (*ExecutionReport, *DistributionPlan, error) {
	rep, plan, err := distplan.ParallelPlanned(c.Partition, c.Processors, cost)
	if err != nil {
		return nil, nil, err
	}
	if n := rep.Machine.InterNodeMessages(); n != 0 {
		return rep, plan, fmt.Errorf("commfree: %d inter-node messages during execution", n)
	}
	return rep, plan, nil
}

// MemoryLayout is the per-processor local layout of one array.
type MemoryLayout = layout.Layout

// Layouts computes the local memory layout of every array's data blocks:
// dense local addresses plus footprint statistics (replication factor,
// savings versus whole-array replication, bounding-box packing).
func (c *Compilation) Layouts() []*MemoryLayout {
	return layout.BuildAll(c.Partition)
}

// Report renders a full human-readable compilation report.
func (c *Compilation) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== source ==\n%s\n", c.Nest)
	fmt.Fprintf(&b, "== dependence analysis ==\n%s\n", c.Partition.Analysis.Summary())
	fmt.Fprintf(&b, "== partition ==\n%s\n", c.Partition.Summary())
	if c.Partition.Redundant != nil {
		fmt.Fprintf(&b, "== redundant computations ==\n%s\n", c.Partition.Redundant.Summary())
	}
	fmt.Fprintf(&b, "== transformed loop ==\n%s\n", c.Transformed)
	fmt.Fprintf(&b, "== local memory layout ==\n")
	for _, l := range c.Layouts() {
		fmt.Fprintf(&b, "  %s\n", l.Summary())
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "== processor assignment (%d processors) ==\n%s", c.Processors, c.Assignment.Summary())
	return b.String()
}
