package commfree

// Differential fixtures for the affine front end: every X.cf under
// testdata/affine/ is an affine program paired with a hand-uniformized
// twin X.uniform.cf. The conformance dimension proves the pair compiles
// to the identical canonical plan and executes bit-identically — final
// state and machine accounting — across the oracle, compiled, and
// specialized-kernel engines under all four strategies, including under
// a seeded chaos schedule.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"commfree/internal/conformance"
	"commfree/internal/lang"
)

func TestAffineFixturePairs(t *testing.T) {
	dir := filepath.Join("testdata", "affine")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".cf") || strings.HasSuffix(name, ".uniform.cf") {
			continue
		}
		pairs++
		t.Run(strings.TrimSuffix(name, ".cf"), func(t *testing.T) {
			affSrc, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			twinSrc, err := os.ReadFile(filepath.Join(dir, strings.TrimSuffix(name, ".cf")+".uniform.cf"))
			if err != nil {
				t.Fatalf("missing uniformized twin: %v", err)
			}
			a, err := lang.ParseAffine(string(affSrc))
			if err != nil {
				t.Fatalf("affine fixture does not parse: %v", err)
			}
			twin, err := lang.Parse(string(twinSrc))
			if err != nil {
				t.Fatalf("twin fixture does not parse: %v", err)
			}
			// Ground every symbolic constant deterministically; the value
			// must not matter (that is the point of elision), so spread
			// them out a bit.
			symVals := map[string]int64{}
			for i, n := range a.SymNames() {
				symVals[n] = int64(i)*3 - 2
			}
			if err := conformance.CheckNormalize(a, twin, symVals, 7); err != nil {
				t.Error(err)
			}
		})
	}
	if pairs < 4 {
		t.Fatalf("affine fixture pairs = %d, want at least 4", pairs)
	}
}
