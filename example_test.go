package commfree_test

import (
	"fmt"

	"commfree"
)

// ExampleCompile shows the full pipeline on the paper's loop L1: analyze,
// partition along the flow-dependence direction, and report the degree of
// parallelism.
func ExampleCompile() {
	comp, err := commfree.Compile(`
for i = 1 to 4
  for j = 1 to 4
    S1: A[2i, j]  = C[i, j] * 7
    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
  end
end
`, commfree.NonDuplicate, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("Ψ =", comp.Partition.Psi)
	fmt.Println("blocks:", comp.Partition.Iter.NumBlocks())
	fmt.Println("verify:", comp.Verify() == nil)
	// Output:
	// Ψ = span{(1,1)}
	// blocks: 7
	// verify: true
}

// ExamplePartition contrasts the non-duplicate and duplicate strategies
// on loop L2, where duplication unlocks all 16 iterations.
func ExamplePartition() {
	nd, _ := commfree.Partition(commfree.LoopL2(), commfree.NonDuplicate)
	dup, _ := commfree.Partition(commfree.LoopL2(), commfree.Duplicate)
	fmt.Println("non-duplicate blocks:", nd.Iter.NumBlocks())
	fmt.Println("duplicate blocks:", dup.Iter.NumBlocks())
	// Output:
	// non-duplicate blocks: 1
	// duplicate blocks: 16
}

// ExampleEliminateRedundant reproduces the paper's loop L3 analysis: 12
// of the 16 S1 computations are redundant, leaving N(S1) = {(i,4)}.
func ExampleEliminateRedundant() {
	r, _ := commfree.EliminateRedundant(commfree.LoopL3())
	fmt.Println("redundant computations:", r.NumRedundant())
	fmt.Println("N(S1) size:", len(r.NonRedundant(0)))
	fmt.Println("N(S2) size:", len(r.NonRedundant(1)))
	// Output:
	// redundant computations: 12
	// N(S1) size: 4
	// N(S2) size: 16
}

// ExampleCompilation_Execute runs the compiled loop on the simulated
// multicomputer and checks the communication-free guarantee held.
func ExampleCompilation_Execute() {
	comp, _ := commfree.CompileNest(commfree.LoopL4(), commfree.NonDuplicate, 4)
	rep, err := comp.Execute(commfree.TransputerCost())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("inter-node messages:", rep.Machine.InterNodeMessages())
	fmt.Println("workloads:", rep.IterationsPerNode)
	// Output:
	// inter-node messages: 0
	// workloads: [16 16 16 16]
}

// ExampleHyperplane shows the baseline comparison the paper makes: the
// hyperplane method cannot handle L1 at all.
func ExampleHyperplane() {
	h, _ := commfree.Hyperplane(commfree.LoopL1())
	fmt.Println(h)
	// Output:
	// hyperplane method not applicable (not a For-all loop)
}
