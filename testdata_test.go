package commfree

// File-driven tests: every DSL source under testdata/ must compile under
// every strategy, verify communication-free, and execute identically to
// sequential on the simulated machine.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func loadTestdata(t *testing.T) map[string]string {
	t.Helper()
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".cf") {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(data)
	}
	if len(out) < 4 {
		t.Fatalf("testdata files = %d", len(out))
	}
	return out
}

func TestTestdataFilesCompileAndRun(t *testing.T) {
	for name, src := range loadTestdata(t) {
		t.Run(name, func(t *testing.T) {
			nests, err := ParseProgram(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, nest := range nests {
				for _, strat := range []Strategy{NonDuplicate, Duplicate, MinimalNonDuplicate, MinimalDuplicate} {
					comp, err := CompileNest(nest, strat, 4)
					if err != nil {
						t.Fatalf("%s: %v", strat, err)
					}
					if err := comp.Verify(); err != nil {
						t.Fatalf("%s: %v", strat, err)
					}
				}
				comp, err := CompileNest(nest, Duplicate, 4)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := comp.Execute(TransputerCost())
				if err != nil {
					t.Fatal(err)
				}
				want := SequentialReference(nest)
				for k, v := range want {
					if rep.Final[k] != v {
						t.Fatalf("element %s differs", k)
					}
				}
			}
		})
	}
}

func TestTestdataRoundTripFormat(t *testing.T) {
	for name, src := range loadTestdata(t) {
		t.Run(name, func(t *testing.T) {
			nests, err := ParseProgram(src)
			if err != nil {
				t.Fatal(err)
			}
			for _, nest := range nests {
				formatted := FormatLoop(nest)
				back, err := Parse(formatted)
				if err != nil {
					t.Fatalf("reparse: %v\n%s", err, formatted)
				}
				if back.Depth() != nest.Depth() || len(back.Body) != len(nest.Body) {
					t.Error("round trip changed shape")
				}
			}
		})
	}
}
