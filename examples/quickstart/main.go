// Quickstart: parse a nested loop, derive a communication-free partition,
// transform it to parallel forall form, and execute it on the simulated
// multicomputer — the full pipeline on the paper's loop L1.
package main

import (
	"fmt"
	"log"

	"commfree"
)

const src = `
# Loop L1 from Chen & Sheu (1993): three arrays, one flow dependence.
for i = 1 to 4
  for j = 1 to 4
    S1: A[2i, j]  = C[i, j] * 7
    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
  end
end
`

func main() {
	// Compile = parse + analyze + partition + transform + assign.
	comp, err := commfree.Compile(src, commfree.NonDuplicate, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("partitioning space Ψ:", comp.Partition.Psi)
	fmt.Printf("parallelism: %d iteration blocks across a %d-dimensional forall space\n\n",
		comp.Partition.Iter.NumBlocks(), comp.Partition.ParallelismDim())

	fmt.Println("transformed loop:")
	fmt.Println(comp.Transformed)

	// The guarantee is checkable: every dependence stays inside a block.
	if err := comp.Verify(); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Println("verified: no dependence crosses an iteration block")

	// Execute on 4 simulated processors with strictly local memories.
	rep, err := comp.Execute(commfree.TransputerCost())
	if err != nil {
		log.Fatal(err)
	}
	want := commfree.SequentialReference(comp.Nest)
	for k, v := range want {
		if rep.Final[k] != v {
			log.Fatalf("mismatch at %s: %v vs %v", k, rep.Final[k], v)
		}
	}
	fmt.Printf("\nexecuted on %d processors: %d inter-node messages, result identical to sequential (%d elements)\n",
		len(rep.IterationsPerNode), rep.Machine.InterNodeMessages(), len(want))
	fmt.Printf("per-processor workloads: %v iterations\n", rep.IterationsPerNode)
}
