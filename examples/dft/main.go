// DFT demonstrates communication-free partitioning of a naive discrete
// Fourier transform — another UPPER-project kernel. The loop
//
//	for k = 1 to N
//	  for n = 1 to N
//	    R[k] = R[k] + X[n] * T[k,n]
//	  end
//	end
//
// accumulates output bin R[k] over all inputs. The input vector X is read
// by every k (fully duplicable); the twiddle matrix T is touched once per
// iteration; R carries the accumulation flow dependence along n. The
// duplicate strategy therefore exposes one block per output bin.
package main

import (
	"fmt"
	"log"

	"commfree"
)

const src = `
for k = 1 to 16
  for n = 1 to 16
    R[k] = R[k] + X[n] * T[k,n]
  end
end
`

func main() {
	nest, err := commfree.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	a, err := commfree.Analyze(nest)
	if err != nil {
		log.Fatal(err)
	}
	for _, arr := range nest.Arrays() {
		fmt.Printf("array %s: fully duplicable = %v\n", arr, a.FullyDuplicable(arr))
	}

	dup, err := commfree.Partition(nest, commfree.Duplicate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nduplicate strategy: Ψ = %s → %d blocks (one per output bin)\n",
		dup.Psi, dup.Iter.NumBlocks())
	fmt.Printf("  X copy factor: %.2f (input broadcast)\n", dup.Data["X"].CopyFactor)
	fmt.Printf("  T copy factor: %.2f (each twiddle row used once)\n", dup.Data["T"].CopyFactor)
	if err := dup.Verify(); err != nil {
		log.Fatal("verify: ", err)
	}

	// Compare with the Ramanujam–Sadayappan hyperplane baseline: the
	// accumulation makes the loop non-For-all, so the baseline does not
	// apply, while the duplicate strategy runs it 16-wide.
	h, err := commfree.Hyperplane(nest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline: %s\n", h)

	comp, err := commfree.CompileNest(nest, commfree.Duplicate, 8)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := comp.Execute(commfree.TransputerCost())
	if err != nil {
		log.Fatal(err)
	}
	want := commfree.SequentialReference(nest)
	for k, v := range want {
		if rep.Final[k] != v {
			log.Fatalf("mismatch at %s", k)
		}
	}
	fmt.Printf("executed on %d processors: workloads %v, zero communication, result identical to sequential\n",
		len(rep.IterationsPerNode), rep.IterationsPerNode)
}
