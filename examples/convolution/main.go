// Convolution demonstrates the duplicate-data strategy on a 1-D
// convolution — one of the scientific kernels the paper's UPPER project
// evaluates. The accumulation
//
//	for i = 1 to N
//	  for k = 1 to K
//	    Y[i] = Y[i] + X[i+k-1] * W[k]
//	  end
//	end
//
// is sequential under the non-duplicate strategy (the overlapping reads
// of X tie every output together), but duplicating the read-only X and W
// leaves only Y's accumulation chain, so every output element becomes an
// independent block.
package main

import (
	"fmt"
	"log"

	"commfree"
)

const src = `
for i = 1 to 12
  for k = 1 to 4
    Y[i] = Y[i] + X[i+k-1] * W[k]
  end
end
`

func main() {
	nest, err := commfree.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// Non-duplicate: the shared X window forces a single block.
	nd, err := commfree.Partition(nest, commfree.NonDuplicate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-duplicate: Ψ = %s → %d block(s)\n", nd.Psi, nd.Iter.NumBlocks())

	// Duplicate: X and W are read-only (fully duplicable); Y keeps only
	// its accumulation direction (0,1).
	dup, err := commfree.Partition(nest, commfree.Duplicate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("duplicate:     Ψ = %s → %d block(s), one per output element\n",
		dup.Psi, dup.Iter.NumBlocks())
	fmt.Printf("  X copy factor: %.2f (overlapping windows replicated)\n", dup.Data["X"].CopyFactor)
	fmt.Printf("  W copy factor: %.2f (kernel broadcast to every block)\n", dup.Data["W"].CopyFactor)
	fmt.Printf("  Y copy factor: %.2f (each output owned by one block)\n", dup.Data["Y"].CopyFactor)

	if err := dup.Verify(); err != nil {
		log.Fatal("verify: ", err)
	}

	// Compile end-to-end on 4 processors and execute.
	comp, err := commfree.CompileNest(nest, commfree.Duplicate, 4)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := comp.Execute(commfree.TransputerCost())
	if err != nil {
		log.Fatal(err)
	}
	want := commfree.SequentialReference(nest)
	for k, v := range want {
		if rep.Final[k] != v {
			log.Fatalf("mismatch at %s", k)
		}
	}
	fmt.Printf("\nexecuted on %d processors: workloads %v, inter-node messages %d, result identical to sequential\n",
		len(rep.IterationsPerNode), rep.IterationsPerNode, rep.Machine.InterNodeMessages())
	fmt.Println("\ntransformed loop:")
	fmt.Println(comp.Transformed)
}
