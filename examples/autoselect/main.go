// Autoselect demonstrates cost-based strategy selection: the selector
// prices every allocation alternative (Theorems 1–4 plus all selective
// duplication subsets) for a loop and a machine, picks the cheapest, and
// the program then compiles and executes the winner with automatically
// planned distribution (unicast/multicast/broadcast by consumer set).
package main

import (
	"fmt"
	"log"

	"commfree"
)

const src = `
# Matrix multiplication, M = 8.
for i = 1 to 8
  for j = 1 to 8
    for k = 1 to 8
      C[i,j] = C[i,j] + A[i,k] * B[k,j]
    end
  end
end
`

func main() {
	nest, err := commfree.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	cost := commfree.TransputerCost()

	best, all, err := commfree.SelectStrategy(nest, 4, cost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(commfree.StrategyRanking(all))
	fmt.Printf("\nselected: %s (%d communication-free blocks)\n\n", best.Label, best.Blocks)

	// Compile the winning allocation (possibly a selective subset) and
	// execute with planned distribution.
	comp, err := commfree.CompileCandidate(nest, best, 4)
	if err != nil {
		log.Fatal(err)
	}
	rep, plan, err := comp.ExecutePlanned(cost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
	fmt.Printf("\nexecuted: %d inter-node messages, workloads %v\n",
		rep.Machine.InterNodeMessages(), rep.IterationsPerNode)

	want := commfree.SequentialReference(nest)
	for k, v := range want {
		if rep.Final[k] != v {
			log.Fatalf("mismatch at %s", k)
		}
	}
	fmt.Printf("result identical to sequential execution (%d elements)\n", len(want))

	// Local memory economics of the winning allocation.
	fmt.Println("\nlocal memory layouts:")
	for _, l := range comp.Layouts() {
		fmt.Println(" ", l.Summary())
	}
}
