// Matmul reproduces the paper's evaluation: matrix multiplication (loop
// L5) is sequential under the non-duplicate strategy, becomes row-parallel
// when array B is duplicated (L5′), and fully tile-parallel when both A
// and B are duplicated (L5″). The example prints the strategy comparison,
// a condensed Table I/II, and validates the parallel runs element-for-
// element against sequential execution.
package main

import (
	"fmt"
	"log"

	"commfree"
)

func main() {
	nest := commfree.LoopL5(4)

	// Strategy comparison on the 4×4×4 instance.
	nd, err := commfree.Partition(nest, commfree.NonDuplicate)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := commfree.PartitionSelective(nest, map[string]bool{"B": true, "C": true})
	if err != nil {
		log.Fatal(err)
	}
	dup, err := commfree.Partition(nest, commfree.Duplicate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strategy comparison for C[i,j] += A[i,k]*B[k,j] (M=4):")
	fmt.Printf("  non-duplicate (Theorem 1): Ψ = %-28s → %2d block(s)  [sequential]\n",
		nd.Psi, nd.Iter.NumBlocks())
	fmt.Printf("  duplicate B only   (L5′):  Ψ = %-28s → %2d block(s)  [row parallel]\n",
		sel.Psi, sel.Iter.NumBlocks())
	fmt.Printf("  duplicate A and B  (L5″):  Ψ = %-28s → %2d block(s)  [tile parallel]\n",
		dup.Psi, dup.Iter.NumBlocks())

	for name, r := range map[string]*commfree.PartitionResult{"L5": nd, "L5′": sel, "L5″": dup} {
		if err := r.Verify(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	fmt.Println("  (all three verified communication-free)")

	// Condensed Tables I and II.
	cost := commfree.TransputerCost()
	rows, err := commfree.TableI([]int64{16, 64, 256}, []int{4, 16}, cost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsimulated Transputer mesh (t_comp=9.6µs, t_start=0.5ms, t_comm=2.3µs):")
	fmt.Printf("  %4s %3s %12s %12s %12s %8s %8s\n", "M", "p", "seq(s)", "L5′(s)", "L5″(s)", "S′", "S″")
	for _, r := range rows {
		fmt.Printf("  %4d %3d %12.4f %12.4f %12.4f %8.2f %8.2f\n",
			r.M, r.P, r.Sequential, r.Prime, r.DoublePrime,
			r.SpeedupPrime(), r.SpeedupDoublePrime())
	}

	// Validation with real data at small M.
	want := commfree.SequentialMatMul(16)
	gotP, err := commfree.RunL5Prime(16, 4, cost)
	if err != nil {
		log.Fatal(err)
	}
	gotD, err := commfree.RunL5DoublePrime(16, 16, cost)
	if err != nil {
		log.Fatal(err)
	}
	for k, v := range want {
		if gotP[k] != v || gotD[k] != v {
			log.Fatalf("validation failed at %s", k)
		}
	}
	fmt.Println("\nvalidation: L5′ (p=4) and L5″ (p=16) reproduce sequential matmul exactly at M=16, zero inter-node messages")
}
