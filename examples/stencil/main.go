// Stencil walks through Section IV's worked example: the 3-D stencil loop
// L4 is partitioned along its flow-dependence direction (1,-1,1),
// transformed into two forall loops plus one sequential loop (the paper's
// L4′), and mapped onto a 2×2 processor grid with perfectly balanced
// workloads (the paper's Fig. 10).
package main

import (
	"fmt"
	"log"

	"commfree"
)

const src = `
for i1 = 1 to 4
  for i2 = 1 to 4
    for i3 = 1 to 4
      A[i1,i2,i3] = A[i1-1,i2+1,i3-1] + B[i1,i2,i3]
    end
  end
end
`

func main() {
	comp, err := commfree.Compile(src, commfree.NonDuplicate, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("loop L4 partitioning space:", comp.Partition.Psi)
	fmt.Printf("blocks: %d along the dependence direction, forall dimension %d\n\n",
		comp.Partition.Iter.NumBlocks(), comp.Partition.ParallelismDim())

	fmt.Println("transformed loop (the paper's L4′):")
	fmt.Println(comp.Transformed)

	fmt.Println("processor assignment (cyclic mod distribution):")
	fmt.Print(comp.Assignment.Summary())

	if err := comp.Verify(); err != nil {
		log.Fatal("verify: ", err)
	}

	rep, err := comp.Execute(commfree.TransputerCost())
	if err != nil {
		log.Fatal(err)
	}
	want := commfree.SequentialReference(comp.Nest)
	for k, v := range want {
		if rep.Final[k] != v {
			log.Fatalf("mismatch at %s", k)
		}
	}
	fmt.Printf("\nexecuted: workloads %v (Fig. 10's 16/16/16/16), zero communication, result identical to sequential\n",
		rep.IterationsPerNode)
}
