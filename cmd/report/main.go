// Command report regenerates the reproduction report (Tables I–II with
// the paper's reference values, figure index, kernel gallery, strategy
// ranking, five-strategy comparison) live from the pipeline and prints
// it as markdown.
//
// Usage:
//
//	report                        # full report to stdout
//	report -o report.md           # write to a file
//	report -sections tables,compare
//	report -compare-out cmp.json  # also write the comparison artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"commfree/internal/machine"
	"commfree/internal/report"
)

func main() {
	var (
		out        = flag.String("o", "", "output file (default stdout)")
		sections   = flag.String("sections", "all", "comma list: tables,figures,gallery,selector,compare or 'all'")
		compareOut = flag.String("compare-out", "", "write the strategy-comparison JSON artifact to this file")
	)
	flag.Parse()

	opts := report.AllSections()
	if *sections != "all" {
		opts = report.Options{}
		for _, s := range strings.Split(*sections, ",") {
			switch strings.TrimSpace(s) {
			case "tables":
				opts.Tables = true
			case "figures":
				opts.Figures = true
			case "gallery":
				opts.Gallery = true
			case "selector":
				opts.Selector = true
			case "compare":
				opts.Compare = true
			default:
				fmt.Fprintf(os.Stderr, "report: unknown section %q\n", s)
				os.Exit(1)
			}
		}
	}
	if *compareOut != "" {
		cmp, err := report.Compare(4, machine.Transputer())
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		data, err := cmp.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*compareOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "comparison artifact written to", *compareOut)
	}
	md, err := report.Generate(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(md)
		return
	}
	if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	fmt.Println("report written to", *out)
}
