// Command gallery prints the kernel gallery: for each classic scientific
// kernel (the UPPER-project workloads of the paper's conclusion), the
// degree of communication-free parallelism each strategy achieves.
package main

import (
	"flag"
	"fmt"
	"os"

	"commfree/internal/kernels"
)

func main() {
	name := flag.String("kernel", "", "show one kernel (default: all)")
	src := flag.Bool("src", false, "also print each kernel's DSL source")
	flag.Parse()

	list := kernels.All()
	if *name != "" {
		k, err := kernels.Get(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gallery:", err)
			os.Exit(1)
		}
		list = []kernels.Kernel{k}
	}

	fmt.Printf("%-16s %14s %11s %13s %13s\n",
		"kernel", "non-duplicate", "duplicate", "min non-dup", "min dup")
	for _, k := range list {
		outs, err := k.Outcomes()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gallery:", err)
			os.Exit(1)
		}
		fmt.Printf("%-16s", k.Name)
		for _, o := range outs {
			status := ""
			if !o.Verified {
				status = "!"
			}
			fmt.Printf(" %9d blk%s", o.Blocks, status)
		}
		fmt.Println()
	}
	fmt.Println("\n(blk = communication-free iteration blocks; all partitions verified)")
	if *src {
		for _, k := range list {
			fmt.Printf("\n--- %s ---\n%s\n%s", k.Name, k.About, k.Source)
		}
	}
}
