// Command tables regenerates Tables I and II of the paper: execution
// times and speedups of matrix multiplication under the sequential (L5),
// partially duplicated (L5′), and doubly duplicated (L5″) schemes on the
// simulated Transputer mesh.
//
// Usage:
//
//	tables            # both tables
//	tables -table 2   # only Table II
//	tables -validate  # additionally execute small cases with real data
package main

import (
	"flag"
	"fmt"
	"os"

	"commfree"
)

func main() {
	var (
		table    = flag.Int("table", 0, "table number (1 or 2); 0 prints both")
		validate = flag.Bool("validate", false, "execute small problem sizes with real data and compare against sequential matrix multiplication")
	)
	flag.Parse()

	ms := []int64{16, 32, 64, 128, 256}
	ps := []int{4, 16}
	cost := commfree.TransputerCost()
	rows, err := commfree.TableI(ms, ps, cost)
	if err != nil {
		fatal(err)
	}
	byP := map[int][]commfree.TableRow{}
	for _, r := range rows {
		byP[r.P] = append(byP[r.P], r)
	}

	if *table == 0 || *table == 1 {
		fmt.Println("TABLE I — EXECUTION TIME OF LOOPS L5, L5', AND L5'' (in s, simulated)")
		fmt.Printf("%-22s %-6s", "Number of processors", "Loop")
		for _, m := range ms {
			fmt.Printf(" %10d", m)
		}
		fmt.Println()
		fmt.Printf("%-22s %-6s", "p = 1", "L5")
		for _, r := range byP[4] {
			fmt.Printf(" %10.4f", r.Sequential)
		}
		fmt.Println()
		for _, p := range ps {
			fmt.Printf("%-22s %-6s", fmt.Sprintf("p = %d", p), "L5'")
			for _, r := range byP[p] {
				fmt.Printf(" %10.4f", r.Prime)
			}
			fmt.Println()
			fmt.Printf("%-22s %-6s", "", "L5''")
			for _, r := range byP[p] {
				fmt.Printf(" %10.4f", r.DoublePrime)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *table == 0 || *table == 2 {
		fmt.Println("TABLE II — SPEEDUP OF LOOPS L5' AND L5'' (simulated)")
		fmt.Printf("%-22s %-6s", "Number of processors", "Loop")
		for _, m := range ms {
			fmt.Printf(" %10d", m)
		}
		fmt.Println()
		for _, p := range ps {
			fmt.Printf("%-22s %-6s", fmt.Sprintf("p = %d", p), "L5'")
			for _, r := range byP[p] {
				fmt.Printf(" %10.2f", r.SpeedupPrime())
			}
			fmt.Println()
			fmt.Printf("%-22s %-6s", "", "L5''")
			for _, r := range byP[p] {
				fmt.Printf(" %10.2f", r.SpeedupDoublePrime())
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *validate {
		fmt.Println("validation (real data, strictly local memories):")
		for _, cfg := range []struct {
			m int64
			p int
		}{{16, 4}, {16, 16}, {32, 16}} {
			want := commfree.SequentialMatMul(cfg.m)
			gotP, err := commfree.RunL5Prime(cfg.m, cfg.p, cost)
			if err != nil {
				fatal(err)
			}
			gotD, err := commfree.RunL5DoublePrime(cfg.m, cfg.p, cost)
			if err != nil {
				fatal(err)
			}
			okP, okD := true, true
			for k, v := range want {
				if gotP[k] != v {
					okP = false
				}
				if gotD[k] != v {
					okD = false
				}
			}
			fmt.Printf("  M=%-3d p=%-2d  L5' correct=%v  L5'' correct=%v\n", cfg.m, cfg.p, okP, okD)
			if !okP || !okD {
				fatal(fmt.Errorf("validation failed at M=%d p=%d", cfg.m, cfg.p))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
