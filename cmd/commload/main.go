// commload is the open-loop load harness for the commfree serving
// stack. It drives either an in-process MapTransport fleet (-local N,
// no sockets — the benchmarking mode) or any running daemons
// (-targets), firing a seed-pure Zipfian workload through warmup →
// steady → overload → recovery phases and reporting per-phase
// p50/p99/p999 latency, goodput, hedge win rate, batch coalescing,
// and shed rate.
//
//	# 3-node in-process fleet, SLO admission, default phase profile
//	commload -local 3 -seed 42
//
//	# the same seed against the queue-depth-only baseline
//	commload -local 3 -seed 42 -admission queue
//
//	# running daemons
//	commload -targets http://localhost:8377 -seed 42
//
// The JSON report goes to stdout (or -out); the human summary to
// stderr. Two runs with one seed replay the identical request
// sequence — the report's digest proves it.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"commfree/internal/cluster"
	"commfree/internal/loadgen"
	"commfree/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "commload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Int64("seed", 1, "schedule seed (same seed ⇒ identical request sequence)")
		local   = flag.Int("local", 0, "run an in-process N-node fleet instead of external targets")
		targets = flag.String("targets", "", "comma-separated base URLs of running daemons (ignored with -local)")
		out     = flag.String("out", "", "write the JSON report here instead of stdout")

		rate      = flag.Float64("rate", 100, "steady-phase arrival rate, requests/second")
		overloadX = flag.Float64("overload-x", 3, "overload-phase rate as a multiple of -rate")
		warmupD   = flag.Duration("warmup", 2*time.Second, "warmup phase duration (at half -rate)")
		steadyD   = flag.Duration("steady", 4*time.Second, "steady phase duration")
		overloadD = flag.Duration("overload", 4*time.Second, "overload phase duration")
		recoverD  = flag.Duration("recovery", 4*time.Second, "recovery phase duration (back at -rate)")

		zipfS      = flag.Float64("zipf", 1.1, "Zipf exponent of plan popularity")
		execFrac   = flag.Float64("exec-frac", 0.9, "fraction of /v1/execute requests (rest /v1/compile)")
		procs      = flag.String("procs", "4,8,16", "comma-separated machine sizes drawn per request")
		chaosFrac  = flag.Float64("chaos-frac", 0, "fraction of execute requests carrying seeded fault injection")
		chaosSeed  = flag.Int64("chaos-seed", 0, "chaos seed base (default: -seed)")
		sloT       = flag.Duration("slo", 150*time.Millisecond, "latency objective: goodput counts OKs within it")
		nodeSLO    = flag.Duration("node-slo", 0, "fleet: per-node admission target (default -slo/2: half the end-to-end budget, leaving room for one failover hop)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request client budget")

		// -local fleet shape.
		admission   = flag.String("admission", "slo", "fleet admission mode: slo or queue")
		workers     = flag.Int("workers", 2, "fleet: worker-pool size per node")
		queueDepth  = flag.Int("queue-depth", 512, "fleet: request queue depth per node")
		engine      = flag.String("engine", "kernel", "fleet: execution engine")
		replicas    = flag.Int("replicas", 2, "fleet: replicas per plan")
		hedgeAfter  = flag.Duration("hedge-after", 50*time.Millisecond, "fleet: hedge budget (0 disables)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "fleet: execute coalescing window (0 disables)")
	)
	flag.Parse()

	var procList []int
	for _, p := range strings.Split(*procs, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d", &v); err != nil || v <= 0 {
			return fmt.Errorf("bad -procs entry %q", p)
		}
		procList = append(procList, v)
	}

	cfg := loadgen.Config{
		Seed: *seed,
		Phases: []loadgen.Phase{
			{Name: "warmup", Duration: *warmupD, Rate: *rate / 2},
			{Name: "steady", Duration: *steadyD, Rate: *rate},
			{Name: "overload", Duration: *overloadD, Rate: *rate * *overloadX},
			{Name: "recovery", Duration: *recoverD, Rate: *rate},
		},
		ZipfS:          *zipfS,
		ExecuteFrac:    *execFrac,
		Processors:     procList,
		ChaosFrac:      *chaosFrac,
		ChaosSeed:      *chaosSeed,
		SLOTarget:      *sloT,
		RequestTimeout: *reqTimeout,
	}

	client := http.DefaultClient
	var urls []string
	switch {
	case *local > 0:
		// A shed request fails over to a replica and queues there again,
		// so a node holding the full end-to-end budget lets two-hop
		// journeys reach 2× the objective. Half the budget per node
		// keeps the worst admitted journey (shed once, served second
		// try) inside the client-facing SLO.
		perNode := *nodeSLO
		if perNode <= 0 {
			perNode = *sloT / 2
		}
		fleet, err := cluster.NewLocal(*local, service.Config{
			Workers:     *workers,
			QueueDepth:  *queueDepth,
			Engine:      *engine,
			BatchWindow: *batchWindow,
			Admission:   *admission,
			SLOTarget:   perNode,
		}, cluster.WithReplicas(*replicas), cluster.WithHedgeAfter(*hedgeAfter))
		if err != nil {
			return err
		}
		defer fleet.Close()
		client = fleet.Client()
		for i := range fleet.Names {
			urls = append(urls, fleet.URL(i))
		}
	case *targets != "":
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(strings.TrimSuffix(t, "/")); t != "" {
				urls = append(urls, t)
			}
		}
	default:
		return fmt.Errorf("need -local N or -targets URL[,URL...]")
	}

	fmt.Fprintf(os.Stderr, "commload: seed=%d admission=%s targets=%d offered=%s\n",
		*seed, *admission, len(urls), describePhases(cfg.Phases))
	rep, err := loadgen.Run(context.Background(), cfg, client, urls, *admission)
	if err != nil {
		return err
	}
	rep.Summarize(os.Stderr)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return rep.WriteJSON(w)
}

func describePhases(phases []loadgen.Phase) string {
	var parts []string
	for _, p := range phases {
		parts = append(parts, fmt.Sprintf("%s %.0f/s×%s", p.Name, p.Rate, p.Duration))
	}
	return strings.Join(parts, " → ")
}
