// Command commfreed serves the commfree compiler as a long-running
// HTTP service ("compilation as a service"): clients POST loop nests to
// /v1/compile and receive a priced, communication-free allocation plan;
// /v1/execute additionally runs the plan on the simulated multicomputer
// and validates it against sequential execution. /v1/metrics exports
// per-stage latency histograms, cache hit rate, and queue gauges (JSON,
// or Prometheus text with ?format=prometheus); /v1/trace/{id} returns
// the span tree of a recent request; /healthz answers liveness probes.
//
// Usage:
//
//	commfreed [-addr :8377] [-workers 8] [-queue 128] [-cache 256]
//	          [-timeout 30s] [-max-iterations 4194304] [-engine compiled]
//	          [-trace-ring 256] [-chaos-seed 0] [-debug]
//	          [-node NAME -peers NAME=URL,... [-replicas 2]
//	           [-hedge-after 0] [-heartbeat 1s] [-suspect 3]]
//
// Cluster mode: -node and -peers make this process one member of a
// static fleet. Requests are routed by consistent hashing over the
// canonical source, so each plan has one home node (plus -replicas−1
// replicas); non-home nodes transparently forward /v1/compile and
// /v1/execute with trace-context propagation, hedging to a replica when
// the home exceeds -hedge-after (0 disables hedging). A heartbeat
// failure detector (-heartbeat interval, -suspect consecutive misses)
// drops crashed peers from routing; GET /v1/cluster reports peer
// health.
//
// -chaos-seed enables service-wide deterministic fault injection: every
// execution runs under a seeded failure schedule (block crashes with
// checkpointed retry, message loss, slow nodes) and must still validate
// bit-identically; requests may override the seed per call with
// "chaos_seed". 0 disables injection (the default).
//
// -debug additionally mounts net/http/pprof under /debug/pprof/ for
// live profiling (off by default: the profile endpoints expose stack
// traces and should not face untrusted networks).
//
// SIGINT/SIGTERM drain gracefully: the node first stops admitting new
// work — local and forwarded requests get 503 + Retry-After so cluster
// peers re-route immediately — then the listener stops accepting and
// every in-flight and queued request completes and receives its
// response before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"commfree/internal/cluster"
	"commfree/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "commfreed:", err)
		os.Exit(1)
	}
}

// parsePeers decodes -peers: comma-separated NAME=URL pairs.
func parsePeers(s string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want NAME=URL)", part)
		}
		peers = append(peers, cluster.Peer{Name: name, URL: url})
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers is empty")
	}
	return peers, nil
}

func run() error {
	var (
		addr      = flag.String("addr", ":8377", "listen address")
		workers   = flag.Int("workers", 8, "worker pool size")
		queue     = flag.Int("queue", 128, "request queue depth")
		cacheN    = flag.Int("cache", 256, "plan cache entries")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		maxIter   = flag.Int64("max-iterations", 1<<22, "per-request simulated-iteration budget (negative = unlimited)")
		engine    = flag.String("engine", "compiled", "execution engine: compiled (dense, parallel) or oracle (map-based reference)")
		drainFor  = flag.Duration("drain", 60*time.Second, "graceful-shutdown drain limit")
		traceRing = flag.Int("trace-ring", 256, "recent request traces kept for GET /v1/trace/{id}")
		chaosSeed = flag.Int64("chaos-seed", 0, "inject deterministic faults into every execution from this seed (0 disables); requests may override with \"chaos_seed\"")
		debug     = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")

		nodeName   = flag.String("node", "", "cluster: this node's name (enables cluster mode; must appear in -peers)")
		peersFlag  = flag.String("peers", "", "cluster: static peer set as NAME=URL,NAME=URL,...")
		replicas   = flag.Int("replicas", 2, "cluster: replicas per plan (home + R-1)")
		hedgeAfter = flag.Duration("hedge-after", 0, "cluster: hedge a forwarded request to the next replica after this long (0 disables)")
		heartbeat  = flag.Duration("heartbeat", time.Second, "cluster: failure-detector heartbeat interval")
		suspect    = flag.Int("suspect", 3, "cluster: consecutive missed heartbeats before a peer is marked down")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		RequestTimeout: *timeout,
		MaxIterations:  *maxIter,
		Engine:         *engine,
		TraceRing:      *traceRing,
		ChaosSeed:      *chaosSeed,
	})
	handler := svc.Handler()

	var hbStop func()
	if *nodeName != "" || *peersFlag != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			return err
		}
		node, err := cluster.NewNode(svc, cluster.Config{
			Self:         *nodeName,
			Peers:        peers,
			Replicas:     *replicas,
			HedgeAfter:   *hedgeAfter,
			SuspectAfter: *suspect,
			HeartbeatS:   heartbeat.Seconds(),
		})
		if err != nil {
			return err
		}
		handler = node.Handler()
		// Heartbeats: the detector itself never reads wall time; the
		// daemon just ticks it on the configured interval.
		tick := time.NewTicker(*heartbeat)
		done := make(chan struct{})
		go func() {
			for {
				select {
				case <-tick.C:
					node.Detector().Tick()
				case <-done:
					return
				}
			}
		}()
		hbStop = func() { tick.Stop(); close(done) }
		log.Printf("commfreed: cluster mode, node %s of %d peers (replicas %d, hedge-after %s)",
			*nodeName, len(peers), *replicas, *hedgeAfter)
	}
	if *debug {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("commfreed: pprof mounted at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("commfreed: listening on %s (%d workers, queue %d, cache %d entries, %s engine)",
			*addr, *workers, *queue, *cacheN, *engine)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // listener failed to start or died
	case <-ctx.Done():
	}

	log.Printf("commfreed: signal received, draining (limit %s)", *drainFor)
	// Refuse new work first — cluster peers see 503 + Retry-After and
	// re-route to a replica instead of queueing behind the drain — then
	// stop accepting connections, wait for active handlers, and drain
	// the worker pool so queued work finishes too.
	svc.BeginDrain()
	if hbStop != nil {
		hbStop()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("commfreed: drained, bye")
	return nil
}
