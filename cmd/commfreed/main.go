// Command commfreed serves the commfree compiler as a long-running
// HTTP service ("compilation as a service"): clients POST loop nests to
// /v1/compile and receive a priced, communication-free allocation plan;
// /v1/execute additionally runs the plan on the simulated multicomputer
// and validates it against sequential execution. /v1/metrics exports
// per-stage latency histograms, cache hit rate, and queue gauges (JSON,
// or Prometheus text with ?format=prometheus); /v1/trace/{id} returns
// the span tree of a recent request; /healthz answers liveness probes.
//
// Usage:
//
//	commfreed [-addr :8377] [-workers 8] [-queue 128] [-cache 256]
//	          [-timeout 30s] [-max-iterations 4194304] [-engine compiled]
//	          [-trace-ring 256] [-chaos-seed 0] [-debug]
//	          [-store-dir DIR [-store-warm]]
//	          [-node NAME -peers NAME=URL,... [-replicas 2]
//	           [-hedge-after 0] [-heartbeat 1s] [-suspect 3]]
//	          [-node NAME -advertise URL -join URL [-leave-on-drain]]
//
// -store-dir persists every compiled plan as a content-addressed,
// CRC-checked record under DIR; a restart against the same directory
// serves its whole pre-restart corpus without recompiling (records
// rehydrate on demand, or all at boot with -store-warm). Corrupted or
// torn records are detected by checksum and silently recompiled.
//
// Cluster mode: -node and -peers make this process one member of a
// static fleet. Requests are routed by consistent hashing over the
// canonical source, so each plan has one home node (plus -replicas−1
// replicas); non-home nodes transparently forward /v1/compile and
// /v1/execute with trace-context propagation, hedging to a replica when
// the home exceeds -hedge-after (0 disables hedging). A heartbeat
// failure detector (-heartbeat interval, -suspect consecutive misses)
// drops crashed peers from routing; GET /v1/cluster reports peer
// health and the membership epoch.
//
// Dynamic membership: -join URL (with -node and -advertise) starts this
// node alone and announces it to the running fleet member at URL; the
// fleet bumps its membership epoch, teaches the newcomer the full
// member list, and migrates every plan whose ring home moved onto this
// node — rebalancing moves records, not recompilations. -leave-on-drain
// announces the symmetric leave on SIGTERM: this node's plans migrate
// to the survivors before the drain, so a scale-down loses no warm
// state. POST /v1/cluster/membership performs the same join/leave
// administratively.
//
// -chaos-seed enables service-wide deterministic fault injection: every
// execution runs under a seeded failure schedule (block crashes with
// checkpointed retry, message loss, slow nodes) and must still validate
// bit-identically; requests may override the seed per call with
// "chaos_seed". 0 disables injection (the default).
//
// -debug additionally mounts net/http/pprof under /debug/pprof/ for
// live profiling (off by default: the profile endpoints expose stack
// traces and should not face untrusted networks).
//
// SIGINT/SIGTERM drain gracefully: the node first stops admitting new
// work — local and forwarded requests get 503 + Retry-After so cluster
// peers re-route immediately — then the listener stops accepting and
// every in-flight and queued request completes and receives its
// response before the process exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"commfree/internal/cluster"
	"commfree/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "commfreed:", err)
		os.Exit(1)
	}
}

// parsePeers decodes -peers: comma-separated NAME=URL pairs.
func parsePeers(s string) ([]cluster.Peer, error) {
	var peers []cluster.Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want NAME=URL)", part)
		}
		peers = append(peers, cluster.Peer{Name: name, URL: url})
	}
	if len(peers) == 0 {
		return nil, errors.New("-peers is empty")
	}
	return peers, nil
}

func run() error {
	var (
		addr      = flag.String("addr", ":8377", "listen address")
		workers   = flag.Int("workers", 8, "worker pool size")
		queue     = flag.Int("queue", 128, "request queue depth")
		cacheN    = flag.Int("cache", 256, "plan cache entries")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request timeout")
		maxIter   = flag.Int64("max-iterations", 1<<22, "per-request simulated-iteration budget (negative = unlimited)")
		engine    = flag.String("engine", "kernel", "execution engine: kernel (specialized, pooled arenas), compiled (dense, parallel), or oracle (map-based reference)")
		batchWin  = flag.Duration("batch-window", 0, "coalesce identical /v1/execute requests arriving within this window into one execution (0 disables)")
		batchMax  = flag.Int("batch-max", 16, "cap on requests per coalesced execution batch (leader included)")
		drainFor  = flag.Duration("drain", 60*time.Second, "graceful-shutdown drain limit")
		traceRing = flag.Int("trace-ring", 256, "recent request traces kept for GET /v1/trace/{id}")
		admission = flag.String("admission", "slo", "overload policy: slo (shed with 429s when measured queue delay breaches -slo-target) or queue (reject only on a physically full queue)")
		sloTarget = flag.Duration("slo-target", 150*time.Millisecond, "end-to-end latency objective defended by -admission slo")
		chaosSeed = flag.Int64("chaos-seed", 0, "inject deterministic faults into every execution from this seed (0 disables); requests may override with \"chaos_seed\"")
		debug     = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")

		storeDir  = flag.String("store-dir", "", "persist compiled plans as content-addressed records under this directory (restart-warm)")
		storeWarm = flag.Bool("store-warm", false, "with -store-dir: rehydrate every stored plan into the cache at boot")

		nodeName     = flag.String("node", "", "cluster: this node's name (enables cluster mode; must appear in -peers, or be new with -join)")
		peersFlag    = flag.String("peers", "", "cluster: static peer set as NAME=URL,NAME=URL,...")
		replicas     = flag.Int("replicas", 2, "cluster: replicas per plan (home + R-1)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "cluster: hedge a forwarded request to the next replica after this long (0 disables)")
		heartbeat    = flag.Duration("heartbeat", time.Second, "cluster: failure-detector heartbeat interval")
		suspect      = flag.Int("suspect", 3, "cluster: consecutive missed heartbeats before a peer is marked down")
		joinVia      = flag.String("join", "", "cluster: join the running fleet member at this base URL (requires -node and -advertise)")
		advertise    = flag.String("advertise", "", "cluster: base URL peers reach this node at (with -join)")
		leaveOnDrain = flag.Bool("leave-on-drain", false, "cluster: announce leave on shutdown, migrating this node's plans to the survivors before draining")
	)
	flag.Parse()

	svc, err := service.NewWithStore(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		RequestTimeout: *timeout,
		MaxIterations:  *maxIter,
		Engine:         *engine,
		BatchWindow:    *batchWin,
		BatchMax:       *batchMax,
		TraceRing:      *traceRing,
		Admission:      *admission,
		SLOTarget:      *sloTarget,
		ChaosSeed:      *chaosSeed,
		StoreDir:       *storeDir,
	})
	if err != nil {
		return err
	}
	if *storeDir != "" {
		log.Printf("commfreed: plan store at %s (%d records)", *storeDir, storeRecords(svc))
		if *storeWarm {
			n, err := svc.WarmStart(context.Background())
			if err != nil {
				return fmt.Errorf("warm start: %w", err)
			}
			log.Printf("commfreed: warm start rehydrated %d plans", n)
		}
	}
	handler := svc.Handler()

	var node *cluster.Node
	var hbStop func()
	if *nodeName != "" || *peersFlag != "" || *joinVia != "" {
		var peers []cluster.Peer
		switch {
		case *joinVia != "":
			if *nodeName == "" || *advertise == "" {
				return errors.New("-join requires -node and -advertise")
			}
			if *peersFlag != "" {
				return errors.New("-join and -peers are mutually exclusive (the fleet teaches the joiner its members)")
			}
			peers = []cluster.Peer{{Name: *nodeName, URL: *advertise}}
		default:
			var err error
			peers, err = parsePeers(*peersFlag)
			if err != nil {
				return err
			}
		}
		var err error
		node, err = cluster.NewNode(svc, cluster.Config{
			Self:         *nodeName,
			Peers:        peers,
			Replicas:     *replicas,
			HedgeAfter:   *hedgeAfter,
			SuspectAfter: *suspect,
			HeartbeatS:   heartbeat.Seconds(),
		})
		if err != nil {
			return err
		}
		handler = node.Handler()
		// Heartbeats: the detector itself never reads wall time; the
		// daemon just ticks it on the configured interval.
		tick := time.NewTicker(*heartbeat)
		done := make(chan struct{})
		go func() {
			for {
				select {
				case <-tick.C:
					node.Detector().Tick()
				case <-done:
					return
				}
			}
		}()
		hbStop = func() { tick.Stop(); close(done) }
		log.Printf("commfreed: cluster mode, node %s of %d peers (replicas %d, hedge-after %s)",
			*nodeName, len(peers), *replicas, *hedgeAfter)
	}
	if *debug {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("commfreed: pprof mounted at /debug/pprof/")
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("commfreed: listening on %s (%d workers, queue %d, cache %d entries, %s engine)",
			*addr, *workers, *queue, *cacheN, *engine)
		errc <- srv.ListenAndServe()
	}()

	if *joinVia != "" {
		// Announce the join once the listener is up: the fleet's sync
		// broadcast and plan migrations arrive over our own HTTP surface.
		go func() {
			if err := announceJoin(*joinVia, *nodeName, *advertise); err != nil {
				log.Printf("commfreed: join via %s FAILED: %v (still serving standalone)", *joinVia, err)
				return
			}
			log.Printf("commfreed: joined fleet via %s as %s (epoch %d, %d members)",
				*joinVia, *nodeName, node.Epoch(), len(node.Members()))
		}()
	}

	select {
	case err := <-errc:
		return err // listener failed to start or died
	case <-ctx.Done():
	}

	log.Printf("commfreed: signal received, draining (limit %s)", *drainFor)
	if *leaveOnDrain && node != nil {
		// Leave the membership before refusing work: the leave epoch
		// migrates every plan this node holds to the survivors, so the
		// warm state outlives the process.
		if via, ok := leaveTarget(node); !ok {
			log.Printf("commfreed: leave-on-drain: no surviving peer to leave through")
		} else if err := announceLeave(via, *nodeName); err != nil {
			log.Printf("commfreed: leave via %s FAILED: %v (plans recompile at their new homes)", via, err)
		} else {
			log.Printf("commfreed: left fleet via %s, plans migrated", via)
		}
	}
	// Refuse new work first — cluster peers see 503 + Retry-After and
	// re-route to a replica instead of queueing behind the drain — then
	// stop accepting connections, wait for active handlers, and drain
	// the worker pool so queued work finishes too.
	svc.BeginDrain()
	if hbStop != nil {
		hbStop()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("commfreed: drained, bye")
	return nil
}

// storeRecords reports the plan store's record count (0 without one).
func storeRecords(svc *service.Service) int64 {
	if st := svc.StoreStats(); st != nil {
		return st.Records
	}
	return 0
}

// announceJoin posts this node's join to a running fleet member,
// retrying briefly (the via node may itself still be booting).
func announceJoin(via, name, advertise string) error {
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		err = postMembership(via, cluster.MembershipUpdate{
			Op:   "join",
			Peer: &cluster.Peer{Name: name, URL: advertise},
		})
		if err == nil {
			return nil
		}
	}
	return err
}

// announceLeave posts this node's leave to a surviving member.
func announceLeave(via, name string) error {
	return postMembership(via, cluster.MembershipUpdate{
		Op:   "leave",
		Peer: &cluster.Peer{Name: name},
	})
}

// leaveTarget picks a member other than self to route the leave through.
func leaveTarget(node *cluster.Node) (string, bool) {
	for _, p := range node.Members() {
		if p.Name != node.Self() {
			return p.URL, true
		}
	}
	return "", false
}

// postMembership POSTs one membership update and checks for 200.
func postMembership(base string, up cluster.MembershipUpdate) error {
	body, err := json.Marshal(up)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	res, err := client.Post(strings.TrimSuffix(base, "/")+"/v1/cluster/membership",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
		return fmt.Errorf("status %d: %s", res.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}
