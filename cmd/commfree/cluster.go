package main

// Cluster administration: -cluster URL selects admin mode against any
// member of a running commfreed fleet.
//
//	commfree -cluster http://host:8377                       # status
//	commfree -cluster http://host:8377 -op join -peer n3=http://host3:8377
//	commfree -cluster http://host:8377 -op leave -peer n3
//
// Join and leave bump the fleet's membership epoch: the ring is
// recomputed and every plan whose home moved migrates as a record
// (old home → new home), never as a recompilation. Status reports the
// epoch, per-peer health, and per-peer plan counts so a rebalance can
// be watched converging.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// runClusterAdmin dispatches one admin operation against the fleet
// member at base.
func runClusterAdmin(base, op, peer string) error {
	base = strings.TrimSuffix(base, "/")
	switch op {
	case "", "status":
		return clusterStatus(base)
	case "join":
		name, url, ok := strings.Cut(peer, "=")
		if !ok || name == "" || url == "" {
			return fmt.Errorf("-op join requires -peer NAME=URL")
		}
		return clusterMembership(base, map[string]any{
			"op":   "join",
			"peer": map[string]string{"name": name, "url": url},
		})
	case "leave":
		if peer == "" || strings.Contains(peer, "=") {
			return fmt.Errorf("-op leave requires -peer NAME")
		}
		return clusterMembership(base, map[string]any{
			"op":   "leave",
			"peer": map[string]string{"name": peer},
		})
	default:
		return fmt.Errorf("unknown -op %q (want status, join, or leave)", op)
	}
}

// clusterStatus prints GET /v1/cluster as indented JSON.
func clusterStatus(base string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	res, err := client.Get(base + "/v1/cluster")
	if err != nil {
		return err
	}
	defer res.Body.Close()
	return printJSONResponse(res)
}

// clusterMembership POSTs one membership update and prints the
// resulting membership document.
func clusterMembership(base string, update map[string]any) error {
	payload, err := json.Marshal(update)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 2 * time.Minute} // migration may move many plans
	res, err := client.Post(base+"/v1/cluster/membership", "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	return printJSONResponse(res)
}

func printJSONResponse(res *http.Response) error {
	out, err := io.ReadAll(res.Body)
	if err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", res.Status, bytes.TrimSpace(out))
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, out, "", "  ") == nil {
		out = pretty.Bytes()
	}
	fmt.Printf("%s\n", out)
	return nil
}
