// Command commfree is the compiler driver: it parses a loop-DSL file,
// derives a communication-free partition under the chosen strategy,
// transforms the loop into parallel forall form, assigns blocks to
// processors, and optionally executes the result on the simulated
// multicomputer to validate it against sequential execution.
//
// Usage:
//
//	commfree -file loop.cf [-strategy duplicate] [-p 16] [-exec] [-chaos-seed 7] [-compare-baseline] [-trace]
//
// -trace prints the pipeline's span tree (parse → deps → redundant →
// partition → transform → assign, plus per-block execution spans under
// -exec) after the report.
//
// -remote URL submits the request to a running commfreed (or any node
// of a commfreed cluster — the fleet routes it to the plan's home node)
// instead of compiling in-process, and prints the service's JSON
// response. -strategy, -p, -exec, and -chaos-seed apply; the other
// local-pipeline flags do not.
//
// -cluster URL administers a running fleet through any member: -op
// status (default) prints membership epoch, peer health, and per-peer
// plan counts; -op join -peer NAME=URL and -op leave -peer NAME change
// the membership, migrating affected plans to their new homes.
//
// With no -file, the paper's loop L1 is used as a demonstration.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"commfree"
)

const demoSrc = `# Loop L1 from Chen & Sheu (1993).
for i = 1 to 4
  for j = 1 to 4
    S1: A[2i, j]  = C[i, j] * 7
    S2: B[j, i+1] = A[2i-2, j-1] + C[i-1, j-1]
  end
end
`

func main() {
	var (
		file      = flag.String("file", "", "loop DSL source file (default: built-in demo L1)")
		strategy  = flag.String("strategy", "non-duplicate", "partitioning strategy: non-duplicate | duplicate | minimal-non-duplicate | minimal-duplicate | mars")
		procs     = flag.Int("p", 4, "number of processors")
		execute   = flag.Bool("exec", false, "execute on the simulated multicomputer and validate against sequential execution")
		compare   = flag.Bool("compare-baseline", false, "also run the Ramanujam–Sadayappan hyperplane baseline")
		emit      = flag.String("emit", "", "write a standalone Go SPMD program implementing the compiled loop to this path ('-' for stdout)")
		auto      = flag.Bool("auto", false, "rank all allocation strategies by simulated cost and compile the best one (overrides -strategy)")
		trace     = flag.Bool("trace", false, "print the pipeline span tree (stage timings, per-block execution spans under -exec)")
		chaosSeed = flag.Int64("chaos-seed", 0, "with -exec: inject a deterministic fault schedule derived from this seed (block crashes, message loss, slow nodes) and prove recovery is bit-identical; 0 disables")
		remote    = flag.String("remote", "", "submit to a running commfreed (or cluster node) at this base URL instead of compiling in-process")

		clusterURL = flag.String("cluster", "", "cluster admin: base URL of any fleet member (use with -op and -peer)")
		clusterOp  = flag.String("op", "status", "cluster admin: status | join | leave")
		clusterPr  = flag.String("peer", "", "cluster admin: NAME=URL for -op join, NAME for -op leave")
	)
	flag.Parse()

	if *clusterURL != "" {
		if err := runClusterAdmin(*clusterURL, *clusterOp, *clusterPr); err != nil {
			fatal(err)
		}
		return
	}

	var trc *commfree.Trace
	if *trace {
		trc = commfree.NewTrace("commfree")
	}

	src := demoSrc
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	if *remote != "" {
		if err := runRemote(*remote, src, *strategy, *procs, *execute, *chaosSeed); err != nil {
			fatal(err)
		}
		return
	}

	var strat commfree.Strategy
	switch *strategy {
	case "non-duplicate":
		strat = commfree.NonDuplicate
	case "duplicate":
		strat = commfree.Duplicate
	case "minimal-non-duplicate":
		strat = commfree.MinimalNonDuplicate
	case "minimal-duplicate":
		strat = commfree.MinimalDuplicate
	case "mars":
		strat = commfree.Mars
	default:
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	var comp *commfree.Compilation
	if *auto {
		// -auto ranks every allocation strategy by simulated cost and
		// compiles the winner (overriding -strategy). The source goes
		// through the affine front end first; a nest the normalization
		// pass provably cannot uniformize fails here with its
		// classification (rejection class, offending reference, failed
		// condition).
		nres, err := commfree.NormalizeSource(src)
		if err != nil {
			fatal(err)
		}
		nest := nres.Nest
		if !nres.Identity {
			fmt.Println("front end: affine references normalized to uniformly generated form")
		}
		best, all, err := commfree.SelectStrategy(nest, *procs, commfree.TransputerCost())
		if err != nil {
			fatal(err)
		}
		fmt.Print(commfree.StrategyRanking(all))
		fmt.Printf("\nselected: %s\n\n", best.Label)
		comp, err = commfree.CompileCandidate(nest, best, *procs)
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		comp, err = commfree.CompileTraced(src, strat, *procs, trc)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Print(comp.Report())

	if err := comp.Verify(); err != nil {
		fatal(fmt.Errorf("communication-freeness verification FAILED: %w", err))
	}
	fmt.Println("\ncommunication-freeness: verified exhaustively on the iteration space")

	if *emit != "" {
		src, err := comp.GenerateGo()
		if err != nil {
			fatal(err)
		}
		if *emit == "-" {
			fmt.Println(src)
		} else if err := os.WriteFile(*emit, []byte(src), 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Printf("\nSPMD Go program written to %s (run with: go run %s)\n", *emit, *emit)
		}
	}

	if *compare {
		h, err := commfree.Hyperplane(comp.Nest)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nbaseline (Ramanujam–Sadayappan hyperplane): %s\n", h)
	}

	if *execute {
		var rep *commfree.ExecutionReport
		var err error
		if *chaosSeed != 0 {
			rep, err = comp.ExecuteChaos(commfree.TransputerCost(), trc, *chaosSeed)
		} else {
			rep, err = comp.ExecuteTraced(commfree.TransputerCost(), trc)
		}
		if err != nil {
			fatal(err)
		}
		want := commfree.SequentialReference(comp.Nest)
		mismatches := 0
		for k, v := range want {
			if rep.Final[k] != v {
				mismatches++
			}
		}
		fmt.Printf("\n== simulated execution ==\n")
		fmt.Printf("processors busy: %d, inter-node messages: %d\n",
			len(rep.IterationsPerNode), rep.Machine.InterNodeMessages())
		fmt.Printf("distribution %.6fs + compute %.6fs = %.6fs simulated\n",
			rep.Machine.DistributionTime(), rep.Machine.ComputeTime(), rep.Machine.Elapsed())
		if *chaosSeed != 0 {
			fmt.Printf("chaos: seed %d injected %d faults (%d post-commit), %d block retries, %d message resends\n",
				*chaosSeed, rep.Chaos.Faults, rep.Chaos.PostCommit, rep.Chaos.Retries, rep.Chaos.MsgResends)
		}
		if mismatches == 0 {
			fmt.Printf("result: identical to sequential execution (%d elements)\n", len(want))
		} else {
			fatal(fmt.Errorf("result differs from sequential execution in %d elements", mismatches))
		}
		if tr := rep.Machine.CurrentTrace(); tr != nil {
			fmt.Printf("\n%s", tr.Gantt(60))
		}
	}

	if trc != nil {
		fmt.Printf("\n== pipeline trace ==\n%s", trc.Tree())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commfree:", err)
	os.Exit(1)
}

// runRemote submits the request to a commfreed service (any node of a
// cluster works — the fleet routes to the plan's home node) and prints
// the indented JSON response.
func runRemote(base, src, strategy string, procs int, execute bool, chaosSeed int64) error {
	path := "/v1/compile"
	body := map[string]any{"source": src, "strategy": strategy, "processors": procs}
	if execute {
		path = "/v1/execute"
		if chaosSeed != 0 {
			body["chaos_seed"] = chaosSeed
		}
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	res, err := client.Post(base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return err
	}
	defer res.Body.Close()
	out, err := io.ReadAll(res.Body)
	if err != nil {
		return err
	}
	if res.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", base+path, res.Status, bytes.TrimSpace(out))
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, out, "", "  ") == nil {
		out = pretty.Bytes()
	}
	if by := res.Header.Get("X-Commfree-Served-By"); by != "" {
		fmt.Printf("served by: %s\n", by)
	}
	fmt.Printf("%s\n", out)
	return nil
}
