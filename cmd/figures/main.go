// Command figures regenerates the paper's figures (1–10) as textual
// renderings computed by the partitioning pipeline.
//
// Usage:
//
//	figures            # all figures
//	figures -fig 10    # a single figure
package main

import (
	"flag"
	"fmt"
	"os"

	"commfree/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-10); 0 renders all")
	flag.Parse()

	nums := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if *fig != 0 {
		nums = []int{*fig}
	}
	for i, n := range nums {
		s, err := figures.Render(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(s)
	}
}
